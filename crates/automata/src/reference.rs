//! The pre-optimization automata algorithms, kept verbatim as a
//! differential-testing oracle.
//!
//! The public entry points ([`HedgeAutomaton::accepts`],
//! [`HedgeAutomaton::product`], [`HedgeAutomaton::witness`],
//! [`crate::inclusion_counterexample`]) now route through the compiled
//! engine in `crate::compiled`; this module preserves the original
//! set-based implementations as free functions so `tests/automata_equiv.rs`
//! can check the two engines agree on generated automata. These are *not*
//! meant for production use — they materialize full product state spaces
//! and re-simulate NFAs with `HashSet` subsets on every call.

use crate::hedge::{HedgeAutomaton, Rule};
use crate::inclusion::InclusionBudgetExceeded;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use xmlmap_regex::Nfa;
use xmlmap_trees::{Name, NodeId, Tree};

/// The set of states reachable at each node of `tree`, bottom-up.
fn state_sets(a: &HedgeAutomaton, tree: &Tree) -> HashMap<NodeId, HashSet<usize>> {
    // Group rules by label for quick lookup.
    let mut by_label: HashMap<&Name, Vec<&Rule>> = HashMap::new();
    for r in &a.rules {
        by_label.entry(&r.label).or_default().push(r);
    }
    let mut sets: HashMap<NodeId, HashSet<usize>> = HashMap::new();
    // Process in reverse document order so children precede parents.
    let order: Vec<NodeId> = tree.nodes().collect();
    for &node in order.iter().rev() {
        let mut states = HashSet::new();
        if let Some(rules) = by_label.get(tree.label(node)) {
            let child_sets: Vec<&HashSet<usize>> =
                tree.children(node).iter().map(|c| &sets[c]).collect();
            for rule in rules {
                if accepts_sets(&rule.horizontal, &child_sets) {
                    states.insert(rule.state);
                }
            }
        }
        sets.insert(node, states);
    }
    sets
}

/// Does the automaton accept `tree`? (Reference implementation.)
pub fn accepts(a: &HedgeAutomaton, tree: &Tree) -> bool {
    state_sets(a, tree)[&Tree::ROOT]
        .iter()
        .any(|&q| a.accepting[q])
}

/// Product automaton over the full pair state space. (Reference
/// implementation: materializes a rule for every label-matched rule pair.)
pub fn product(a: &HedgeAutomaton, other: &HedgeAutomaton) -> HedgeAutomaton {
    let pair = |q1: usize, q2: usize| q1 * other.num_states + q2;
    let mut rules = Vec::new();
    for r1 in &a.rules {
        for r2 in &other.rules {
            if r1.label != r2.label {
                continue;
            }
            // Horizontal product over the paired state alphabet: lift
            // each automaton to pair symbols, then intersect.
            let h1 = r1
                .horizontal
                .expand(|&q1| (0..other.num_states).map(|q2| pair(q1, q2)).collect());
            let h2 = r2
                .horizontal
                .expand(|&q2| (0..a.num_states).map(|q1| pair(q1, q2)).collect());
            rules.push(Rule {
                label: r1.label.clone(),
                state: pair(r1.state, r2.state),
                horizontal: h1.intersect(&h2),
            });
        }
    }
    let num_states = a.num_states * other.num_states;
    let mut accepting = vec![false; num_states];
    for (q1, &a1) in a.accepting.iter().enumerate() {
        for (q2, &a2) in other.accepting.iter().enumerate() {
            accepting[pair(q1, q2)] = a1 && a2;
        }
    }
    HedgeAutomaton {
        num_states,
        rules,
        accepting,
    }
}

/// Emptiness check with witness extraction. (Reference implementation.)
pub fn witness(a: &HedgeAutomaton) -> Option<Tree> {
    // Fixpoint of inhabited states; for each newly inhabited state,
    // remember (rule index, child-state word) to rebuild a witness.
    let mut inhabited: HashSet<usize> = HashSet::new();
    let mut builder: HashMap<usize, (usize, Vec<usize>)> = HashMap::new();
    loop {
        let mut grew = false;
        for (ri, rule) in a.rules.iter().enumerate() {
            if inhabited.contains(&rule.state) {
                continue;
            }
            if let Some(word) = shortest_word_over(&rule.horizontal, &inhabited) {
                inhabited.insert(rule.state);
                builder.insert(rule.state, (ri, word));
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let root_state = (0..a.num_states).find(|&q| a.accepting[q] && inhabited.contains(&q))?;

    fn build(
        a: &HedgeAutomaton,
        builder: &HashMap<usize, (usize, Vec<usize>)>,
        state: usize,
        tree: &mut Tree,
        at: Option<NodeId>,
    ) -> NodeId {
        let (ri, word) = &builder[&state];
        let rule = &a.rules[*ri];
        let node = match at {
            None => Tree::ROOT, // the root label is set by the caller
            Some(p) => tree.add_elem(p, rule.label.clone()),
        };
        for &child_state in word {
            build(a, builder, child_state, tree, Some(node));
        }
        node
    }

    let (ri, _) = &builder[&root_state];
    let mut tree = Tree::new(a.rules[*ri].label.clone());
    build(a, &builder, root_state, &mut tree, None);
    Some(tree)
}

/// Is the language empty? (Reference implementation.)
pub fn is_empty(a: &HedgeAutomaton) -> bool {
    witness(a).is_none()
}

/// NFA simulation where position `i` of the word may be any state drawn from
/// `sets[i]` (used for membership over child state-sets).
fn accepts_sets(nfa: &Nfa<usize>, sets: &[&HashSet<usize>]) -> bool {
    let mut current: HashSet<usize> = HashSet::from([0]);
    for set in sets {
        let mut next = HashSet::new();
        for &q in &current {
            for (sym, q2) in &nfa.transitions[q] {
                if set.contains(sym) {
                    next.insert(*q2);
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        current = next;
    }
    current.iter().any(|&q| nfa.accepting[q])
}

/// A shortest word of `nfa` using only symbols from `allowed` (BFS).
fn shortest_word_over(nfa: &Nfa<usize>, allowed: &HashSet<usize>) -> Option<Vec<usize>> {
    if nfa.accepting[0] {
        return Some(Vec::new());
    }
    let mut pred: Vec<Option<(usize, usize)>> = vec![None; nfa.num_states];
    let mut seen = vec![false; nfa.num_states];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    while let Some(q) = queue.pop_front() {
        for (sym, q2) in &nfa.transitions[q] {
            if allowed.contains(sym) && !seen[*q2] {
                seen[*q2] = true;
                pred[*q2] = Some((q, *sym));
                if nfa.accepting[*q2] {
                    let mut word = Vec::new();
                    let mut cur = *q2;
                    while let Some((p, s)) = pred[cur] {
                        word.push(s);
                        cur = p;
                    }
                    word.reverse();
                    return Some(word);
                }
                queue.push_back(*q2);
            }
        }
    }
    None
}

/// A realizable pair: an `A`-state together with the deterministic `B`
/// subset, plus the witness word that produced it.
struct PairInfo {
    label: Name,
    qa: usize,
    sb: BTreeSet<usize>,
    /// Children realisation (ids of earlier realizable pairs).
    word: Vec<usize>,
}

/// Decides `L(a) ⊆ L(b)` over trees labelled from `alphabet`. (Reference
/// implementation: frozen-rounds BFS over `BTreeSet` machine states, no
/// antichain pruning, no pre-determinization.)
pub fn inclusion_counterexample(
    a: &HedgeAutomaton,
    b: &HedgeAutomaton,
    alphabet: &[Name],
    budget: usize,
) -> Result<Option<Tree>, InclusionBudgetExceeded> {
    let mut pairs: Vec<PairInfo> = Vec::new();
    let mut pair_index: HashMap<(Name, usize, BTreeSet<usize>), usize> = HashMap::new();
    let mut explored = 0usize;

    loop {
        let frozen = pairs.len();
        let mut discovered: Vec<PairInfo> = Vec::new();

        for label in alphabet {
            let a_rules: Vec<_> = a.rules.iter().filter(|r| &r.label == label).collect();
            let b_rules: Vec<_> = b.rules.iter().filter(|r| &r.label == label).collect();
            for rule in &a_rules {
                // Machine state: (subset of the A-rule NFA, per-B-rule NFA
                // subsets). Words range over realizable pairs < frozen.
                #[derive(Clone, PartialEq, Eq, Hash)]
                struct MState {
                    a: BTreeSet<usize>,
                    b: Vec<BTreeSet<usize>>,
                }
                let initial = MState {
                    a: BTreeSet::from([0usize]),
                    b: vec![BTreeSet::from([0usize]); b_rules.len()],
                };
                let mut index: HashMap<MState, usize> = HashMap::new();
                let mut states = vec![initial.clone()];
                let mut parent: Vec<Option<(usize, usize)>> = vec![None];
                let mut queue = VecDeque::from([0usize]);
                index.insert(initial, 0);
                let mut emitted: BTreeSet<BTreeSet<usize>> = BTreeSet::new();

                while let Some(si) = queue.pop_front() {
                    explored += 1;
                    if explored > budget {
                        return Err(InclusionBudgetExceeded {
                            budget,
                            states_explored: explored,
                            operation: "inclusion check".into(),
                        });
                    }
                    let st = states[si].clone();

                    // Complete word: the A-rule accepts here.
                    if st.a.iter().any(|&q| rule.horizontal.accepting[q]) {
                        // The deterministic B-subset: all B-states whose
                        // rule accepts along this word.
                        let sb: BTreeSet<usize> = b_rules
                            .iter()
                            .zip(&st.b)
                            .filter(|(br, bs)| bs.iter().any(|&q| br.horizontal.accepting[q]))
                            .map(|(br, _)| br.state)
                            .collect();
                        let key = (label.clone(), rule.state, sb.clone());
                        if emitted.insert(sb.clone()) && !pair_index.contains_key(&key) {
                            let mut word = Vec::new();
                            let mut cur = si;
                            while let Some((prev, pid)) = parent[cur] {
                                word.push(pid);
                                cur = prev;
                            }
                            word.reverse();
                            discovered.push(PairInfo {
                                label: label.clone(),
                                qa: rule.state,
                                sb,
                                word,
                            });
                        }
                    }

                    // Transitions on realizable pairs.
                    for (pid, p) in pairs.iter().enumerate().take(frozen) {
                        // A part: advance on the child's A-state.
                        let mut na = BTreeSet::new();
                        for &q in &st.a {
                            for (sym, q2) in &rule.horizontal.transitions[q] {
                                if *sym == p.qa {
                                    na.insert(*q2);
                                }
                            }
                        }
                        if na.is_empty() {
                            continue;
                        }
                        // B part: advance each B-rule's subset on any state
                        // in the child's deterministic B-subset.
                        let nb: Vec<BTreeSet<usize>> = b_rules
                            .iter()
                            .zip(&st.b)
                            .map(|(br, bs)| {
                                let mut next = BTreeSet::new();
                                for &q in bs {
                                    for (sym, q2) in &br.horizontal.transitions[q] {
                                        if p.sb.contains(sym) {
                                            next.insert(*q2);
                                        }
                                    }
                                }
                                next
                            })
                            .collect();
                        let next = MState { a: na, b: nb };
                        if !index.contains_key(&next) {
                            let ni = states.len();
                            index.insert(next.clone(), ni);
                            states.push(next);
                            parent.push(Some((si, pid)));
                            queue.push_back(ni);
                        }
                    }
                }
            }
        }

        let mut grew = false;
        for info in discovered {
            let key = (info.label.clone(), info.qa, info.sb.clone());
            if let std::collections::hash_map::Entry::Vacant(e) = pair_index.entry(key) {
                e.insert(pairs.len());
                pairs.push(info);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // A counterexample: accepting for A, rejecting for B.
    let bad = pairs
        .iter()
        .position(|p| a.accepting[p.qa] && p.sb.iter().all(|&q| !b.accepting[q]));
    Ok(bad.map(|root| build_tree(&pairs, root)))
}

fn build_tree(pairs: &[PairInfo], root: usize) -> Tree {
    fn attach(pairs: &[PairInfo], tree: &mut Tree, at: NodeId, id: usize) {
        for &child in &pairs[id].word {
            let node = tree.add_elem(at, pairs[child].label.clone());
            attach(pairs, tree, node, child);
        }
    }
    let mut tree = Tree::new(pairs[root].label.clone());
    attach(pairs, &mut tree, Tree::ROOT, root);
    tree
}
