//! Per-schema-pair cache for the automata decision procedures.
//!
//! Mirrors `xmlmap_patterns::SatCache` and `xmlmap_core`'s `ChaseCache`:
//! one [`AutomataCache`] per ordered DTD pair `(D1, D2)` so repeated
//! inclusion/subschema checks against the same schemas reuse the compiled
//! automata — dense label ids, per-rule horizontals already determinized
//! into flat DFA tables — instead of rebuilding them per call, and return
//! memoized verdicts on repeat queries.

use crate::compiled::{self, CompiledAutomaton};
use crate::hedge::HedgeAutomaton;
use crate::inclusion::{subschema_of_automata, InclusionBudgetExceeded, SubschemaViolation};
use std::sync::Mutex;
use xmlmap_dtd::Dtd;
use xmlmap_trees::{Name, Tree};

/// Compiled automata for one ordered schema pair, plus memoized verdicts.
///
/// Budget overruns are *not* cached — a retry with a larger budget
/// recomputes, exactly as in `SatCache`. Successful verdicts are budget-
/// independent (the fixpoint either completed or it didn't), so they are
/// returned from the memo regardless of the budget passed later.
pub struct AutomataCache {
    d1: Dtd,
    d2: Dtd,
    ha: HedgeAutomaton,
    hb: HedgeAutomaton,
    a: CompiledAutomaton,
    b: CompiledAutomaton,
    inclusion_memo: Mutex<Option<Option<Tree>>>,
    subschema_memo: Mutex<Option<Option<SubschemaViolation>>>,
    product_memo: Mutex<Option<HedgeAutomaton>>,
}

impl AutomataCache {
    /// Compiles both DTDs into hedge automata over their joint alphabet
    /// and determinizes every horizontal language, once.
    pub fn new(d1: &Dtd, d2: &Dtd) -> AutomataCache {
        let mut alphabet: Vec<Name> = d1.alphabet().cloned().collect();
        for l in d2.alphabet() {
            if !alphabet.contains(l) {
                alphabet.push(l.clone());
            }
        }
        let ha = HedgeAutomaton::from_dtd(d1);
        let hb = HedgeAutomaton::from_dtd(d2);
        let a = CompiledAutomaton::new(&ha, &alphabet);
        let b = CompiledAutomaton::new(&hb, &alphabet);
        AutomataCache {
            d1: d1.clone(),
            d2: d2.clone(),
            ha,
            hb,
            a,
            b,
            inclusion_memo: Mutex::new(None),
            subschema_memo: Mutex::new(None),
            product_memo: Mutex::new(None),
        }
    }

    /// The first schema of the pair.
    pub fn d1(&self) -> &Dtd {
        &self.d1
    }

    /// The second schema of the pair.
    pub fn d2(&self) -> &Dtd {
        &self.d2
    }

    /// `L(D1) ⊆ L(D2)` over label structures: `None` when included, or a
    /// counterexample tree.
    pub fn inclusion(&self, budget: usize) -> Result<Option<Tree>, InclusionBudgetExceeded> {
        if let Some(verdict) = &*self.inclusion_memo.lock().unwrap() {
            return Ok(verdict.clone());
        }
        let verdict = compiled::inclusion(&self.a, &self.b, budget)?;
        *self.inclusion_memo.lock().unwrap() = Some(verdict.clone());
        Ok(verdict)
    }

    /// The product automaton `A(D1) × A(D2)` — accepts exactly the trees
    /// conforming to both schemas' label structure. Built over inhabited
    /// pairs only, and memoized: cross-validation loops that intersect the
    /// same schema pair repeatedly get the construction once.
    pub fn product(&self) -> HedgeAutomaton {
        let mut memo = self.product_memo.lock().unwrap();
        if let Some(p) = &*memo {
            return p.clone();
        }
        let p = self.ha.product(&self.hb);
        *memo = Some(p.clone());
        p
    }

    /// Is every `D1` document also a `D2` document? (See
    /// [`crate::inclusion::subschema`].)
    pub fn subschema(
        &self,
        budget: usize,
    ) -> Result<Option<SubschemaViolation>, InclusionBudgetExceeded> {
        if let Some(verdict) = &*self.subschema_memo.lock().unwrap() {
            return Ok(verdict.clone());
        }
        let verdict = subschema_of_automata(&self.d1, &self.d2, &self.a, &self.b, budget)?;
        *self.subschema_memo.lock().unwrap() = Some(verdict.clone());
        Ok(verdict)
    }
}
