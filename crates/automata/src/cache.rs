//! Per-schema-pair cache for the automata decision procedures.
//!
//! Mirrors `xmlmap_patterns::SatCache` and `xmlmap_core`'s `ChaseCache`:
//! one [`AutomataCache`] per ordered DTD pair `(D1, D2)` so repeated
//! inclusion/subschema checks against the same schemas reuse the compiled
//! automata — dense label ids, per-rule horizontals already determinized
//! into flat DFA tables — instead of rebuilding them per call, and return
//! memoized verdicts on repeat queries.

use crate::compiled::{self, CompiledAutomaton};
use crate::hedge::HedgeAutomaton;
use crate::inclusion::{subschema_of_automata, InclusionBudgetExceeded, SubschemaViolation};
use std::sync::Mutex;
use xmlmap_codec::{CodecError, Decoder, Encoder};
use xmlmap_dtd::Dtd;
use xmlmap_trees::{Name, Tree};

fn hedge_bytes(h: &HedgeAutomaton) -> u64 {
    h.accepting.capacity() as u64
        + h.rules
            .iter()
            .map(|r| r.label.as_str().len() as u64 + r.horizontal.approx_bytes() + 64)
            .sum::<u64>()
}

/// Compiled automata for one ordered schema pair, plus memoized verdicts.
///
/// Budget overruns are *not* cached — a retry with a larger budget
/// recomputes, exactly as in `SatCache`. Successful verdicts are budget-
/// independent (the fixpoint either completed or it didn't), so they are
/// returned from the memo regardless of the budget passed later.
pub struct AutomataCache {
    d1: Dtd,
    d2: Dtd,
    ha: HedgeAutomaton,
    hb: HedgeAutomaton,
    a: CompiledAutomaton,
    b: CompiledAutomaton,
    inclusion_memo: Mutex<Option<Option<Tree>>>,
    subschema_memo: Mutex<Option<Option<SubschemaViolation>>>,
    product_memo: Mutex<Option<HedgeAutomaton>>,
}

impl AutomataCache {
    /// Compiles both DTDs into hedge automata over their joint alphabet
    /// and determinizes every horizontal language, once.
    pub fn new(d1: &Dtd, d2: &Dtd) -> AutomataCache {
        let mut alphabet: Vec<Name> = d1.alphabet().cloned().collect();
        for l in d2.alphabet() {
            if !alphabet.contains(l) {
                alphabet.push(l.clone());
            }
        }
        let ha = HedgeAutomaton::from_dtd(d1);
        let hb = HedgeAutomaton::from_dtd(d2);
        let a = CompiledAutomaton::new(&ha, &alphabet);
        let b = CompiledAutomaton::new(&hb, &alphabet);
        AutomataCache {
            d1: d1.clone(),
            d2: d2.clone(),
            ha,
            hb,
            a,
            b,
            inclusion_memo: Mutex::new(None),
            subschema_memo: Mutex::new(None),
            product_memo: Mutex::new(None),
        }
    }

    /// The first schema of the pair.
    pub fn d1(&self) -> &Dtd {
        &self.d1
    }

    /// The second schema of the pair.
    pub fn d2(&self) -> &Dtd {
        &self.d2
    }

    /// `L(D1) ⊆ L(D2)` over label structures: `None` when included, or a
    /// counterexample tree.
    pub fn inclusion(&self, budget: usize) -> Result<Option<Tree>, InclusionBudgetExceeded> {
        if let Some(verdict) = &*self.inclusion_memo.lock().unwrap() {
            return Ok(verdict.clone());
        }
        let verdict = compiled::inclusion(&self.a, &self.b, budget)?;
        *self.inclusion_memo.lock().unwrap() = Some(verdict.clone());
        Ok(verdict)
    }

    /// The product automaton `A(D1) × A(D2)` — accepts exactly the trees
    /// conforming to both schemas' label structure. Built over inhabited
    /// pairs only, and memoized: cross-validation loops that intersect the
    /// same schema pair repeatedly get the construction once.
    pub fn product(&self) -> HedgeAutomaton {
        let mut memo = self.product_memo.lock().unwrap();
        if let Some(p) = &*memo {
            return p.clone();
        }
        let p = self.ha.product(&self.hb);
        *memo = Some(p.clone());
        p
    }

    /// Serializes the compiled pair for an on-disk artifact store.
    ///
    /// The schema texts and all four automata (sparse and determinized) are
    /// written; memoized verdicts are deliberately *not* — they are cheap to
    /// re-derive from the compiled tables and would bloat every artifact
    /// with witness trees.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.d1.to_string());
        e.str(&self.d2.to_string());
        compiled::encode_hedge(&self.ha, &mut e);
        compiled::encode_hedge(&self.hb, &mut e);
        self.a.encode(&mut e);
        self.b.encode(&mut e);
        e.finish()
    }

    /// Inverse of [`AutomataCache::to_bytes`]: reparses the (small) schema
    /// texts, decodes the compiled tables verbatim, and starts with empty
    /// verdict memos. Subset construction is never re-run.
    pub fn from_bytes(bytes: &[u8]) -> Result<AutomataCache, CodecError> {
        let mut d = Decoder::new(bytes);
        let t1 = d.str()?.to_owned();
        let t2 = d.str()?.to_owned();
        let d1 = xmlmap_dtd::parse(&t1).map_err(|_| CodecError::Malformed("stored DTD text"))?;
        let d2 = xmlmap_dtd::parse(&t2).map_err(|_| CodecError::Malformed("stored DTD text"))?;
        let ha = compiled::decode_hedge(&mut d)?;
        let hb = compiled::decode_hedge(&mut d)?;
        let a = CompiledAutomaton::decode(&mut d)?;
        let b = CompiledAutomaton::decode(&mut d)?;
        d.expect_end()?;
        Ok(AutomataCache {
            d1,
            d2,
            ha,
            hb,
            a,
            b,
            inclusion_memo: Mutex::new(None),
            subschema_memo: Mutex::new(None),
            product_memo: Mutex::new(None),
        })
    }

    /// Approximate heap footprint in bytes: schemas, all four automata, and
    /// whatever the verdict memos currently hold.
    pub fn approx_bytes(&self) -> u64 {
        let memo_bytes = {
            let inc = match &*self.inclusion_memo.lock().unwrap() {
                Some(Some(t)) => t.approx_bytes(),
                _ => 0,
            };
            let sub = match &*self.subschema_memo.lock().unwrap() {
                Some(Some(SubschemaViolation::Document(t))) => t.approx_bytes(),
                Some(Some(SubschemaViolation::AttributeMismatch { label, .. })) => {
                    label.as_str().len() as u64 + 64
                }
                _ => 0,
            };
            let prod = match &*self.product_memo.lock().unwrap() {
                Some(p) => hedge_bytes(p),
                None => 0,
            };
            inc + sub + prod
        };
        self.d1.to_string().len() as u64
            + self.d2.to_string().len() as u64
            + hedge_bytes(&self.ha)
            + hedge_bytes(&self.hb)
            + self.a.approx_bytes()
            + self.b.approx_bytes()
            + memo_bytes
    }

    /// Is every `D1` document also a `D2` document? (See
    /// [`crate::inclusion::subschema`].)
    pub fn subschema(
        &self,
        budget: usize,
    ) -> Result<Option<SubschemaViolation>, InclusionBudgetExceeded> {
        if let Some(verdict) = &*self.subschema_memo.lock().unwrap() {
            return Ok(verdict.clone());
        }
        let verdict = subschema_of_automata(&self.d1, &self.d2, &self.a, &self.b, budget)?;
        *self.subschema_memo.lock().unwrap() = Some(verdict.clone());
        Ok(verdict)
    }
}
