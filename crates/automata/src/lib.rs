#![warn(missing_docs)]

//! # xmlmap-automata
//!
//! Unranked (hedge) tree automata with regular horizontal languages: the
//! automata-theoretic substrate behind the consistency procedures of
//! *XML Schema Mappings* (PODS 2009) — membership, product, and emptiness
//! with witness extraction.

pub mod cache;
pub mod compile;
mod compiled;
pub mod hedge;
pub mod inclusion;
pub mod reference;

pub use cache::AutomataCache;
pub use compile::pattern_automaton;
pub use hedge::{HedgeAutomaton, Rule};
pub use inclusion::{
    inclusion_counterexample, subschema, InclusionBudgetExceeded, SubschemaViolation,
};
