//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this small replacement covering the API the benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain adaptive timing loop reporting the **median**
//! time per iteration over `sample_size` batches — no statistics beyond
//! that, no HTML reports. Good enough to observe the orders of magnitude
//! the paper's figures are about.

#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque identity function preventing the optimiser from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples (upstream minimum is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Sets the target measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with access to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            median_ns: None,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            median_ns: None,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group (upstream writes reports here; this prints nothing).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        match bencher.median_ns {
            Some(ns) => println!("{}/{:<28} time: [{}]", self.name, id.name, format_ns(ns)),
            None => println!("{}/{} — no measurement taken", self.name, id.name),
        }
    }
}

/// Runs and times the measured closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.median_ns = Some(measure_median_ns(
            self.sample_size,
            self.measurement_time,
            &mut || {
                black_box(routine());
            },
        ));
    }

    /// The measured median, if [`Bencher::iter`] ran.
    pub fn median_ns(&self) -> Option<f64> {
        self.median_ns
    }
}

/// Median ns/iteration of `routine` over `samples` batches within roughly
/// `budget` total measurement time.
pub fn measure_median_ns(samples: usize, budget: Duration, routine: &mut dyn FnMut()) -> f64 {
    // Warm-up + estimate: run until 2ms or 3 iterations.
    let mut iters_done = 0u64;
    let warmup = Instant::now();
    while iters_done < 3 || warmup.elapsed() < Duration::from_millis(2) {
        routine();
        iters_done += 1;
        if iters_done >= 1_000_000 {
            break;
        }
    }
    let est_per_iter = warmup.elapsed().as_secs_f64() / iters_done as f64;
    // Batch size so one sample takes ~budget/samples.
    let per_sample = budget.as_secs_f64() / samples as f64;
    let batch = ((per_sample / est_per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
    let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..batch {
            routine();
        }
        sample_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
    }
    sample_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = sample_ns.len() / 2;
    if sample_ns.len() % 2 == 1 {
        sample_ns[mid]
    } else {
        (sample_ns[mid - 1] + sample_ns[mid]) / 2.0
    }
}

/// Compact human formatting of a nanosecond quantity.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_measurement_is_sane() {
        let mut x = 0u64;
        let ns = measure_median_ns(5, Duration::from_millis(20), &mut || {
            x = black_box(x.wrapping_add(1));
        });
        assert!(ns > 0.0 && ns < 1_000_000.0, "{ns}");
    }

    #[test]
    fn format_scales() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_500.0), "12.50 µs");
        assert_eq!(format_ns(3_400_000.0), "3.40 ms");
        assert_eq!(format_ns(2_000_000_000.0), "2.000 s");
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
