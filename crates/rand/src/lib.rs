//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this small deterministic replacement covering exactly the surface the
//! repo uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256** seeded via SplitMix64 — high quality, reproducible, and
//! fast; it makes no promise of matching upstream `rand`'s streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard {
    /// Samples a uniform value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a uniform value from the range. Panics if empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                if span == u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span as u64 + 1)) as i128) as $t
            }
        }
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $u as $t
            }
        }
    )*};
}

impl_int_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range; panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded with
    /// SplitMix64 (not stream-compatible with upstream `rand`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// Alias kept for code written against `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// The conventional glob-import module.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: usize = rng.gen_range(1..=2);
            assert!((1..=2).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0)); // samples lie in [0, 1), so p = 1 always hits
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_uniform_types() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u64 = rng.gen();
        let _: i64 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
