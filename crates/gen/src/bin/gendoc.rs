//! `gendoc` — streams a corpus document to a file or stdout for the
//! streaming bench rows and the CI `stream-smoke` job.
//!
//! ```text
//! gendoc [--family university|exchange] [--size-scale K] [--students N]
//!        [--profs N] [--dtd PATH] [--mapping PATH] [--out PATH]
//!        [--updates N --updates-out PATH [--update-seed S]]
//! ```
//!
//! The `university` family (default) is the micro-bench workload
//! `university_tree(160, 3)`; `--size-scale K` emits `160·K` professors
//! (so `--size-scale 100` is the 100x corpus).
//!
//! The `exchange` family feeds the streaming-chase benches and CI: the
//! university body followed by `40 000·K` inert `pad` records, so
//! `--size-scale` grows corpus *bytes* (~23 bytes per pad; `K = 100` is
//! ~92MB) while chase *firings* stay pinned to the professor count —
//! `--profs` is the firing-density knob. `--mapping PATH` writes the
//! matching exchange mapping file for `xmlmap stream --chase`.
//!
//! `--updates N` (exchange only) additionally writes a deterministic
//! seeded update storm of `N` operations in the `xmlmap delta`
//! updatefile grammar to `--updates-out PATH` — mostly conformance- and
//! count-preserving pad edits the incremental chase skips, with a seeded
//! fraction of professor delete/reinsert pairs that retract and replay
//! firings. `--update-seed S` (default 42) varies the storm.
//!
//! Both families are streamed in O(depth) memory, so multi-GB corpora
//! are fine; `--dtd PATH` additionally writes the family's source DTD
//! for `xmlmap stream`. Generated corpora belong under `corpora/`,
//! which is gitignored.

use std::io::Write;

/// Professors in the 1x document (the micro-bench university workload).
const BASE_PROFESSORS: usize = 160;
/// Students per professor (the micro-bench university workload).
const BASE_STUDENTS: usize = 3;
/// Pads in the 1x exchange document (~0.9MB of inert records).
const BASE_PADS: usize = 40_000;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Family {
    University,
    Exchange,
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut family = Family::University;
    let mut scale: usize = 1;
    let mut students = BASE_STUDENTS;
    let mut profs: Option<usize> = None;
    let mut dtd_path: Option<String> = None;
    let mut mapping_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut updates: usize = 0;
    let mut updates_path: Option<String> = None;
    let mut update_seed: u64 = 42;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--family" => {
                family = match value("--family")?.as_str() {
                    "university" => Family::University,
                    "exchange" => Family::Exchange,
                    other => return Err(format!("--family: unknown family `{other}`")),
                }
            }
            "--size-scale" => {
                scale = value("--size-scale")?
                    .parse()
                    .map_err(|e| format!("--size-scale: {e}"))?
            }
            "--students" => {
                students = value("--students")?
                    .parse()
                    .map_err(|e| format!("--students: {e}"))?
            }
            "--profs" => {
                profs = Some(
                    value("--profs")?
                        .parse()
                        .map_err(|e| format!("--profs: {e}"))?,
                )
            }
            "--dtd" => dtd_path = Some(value("--dtd")?),
            "--mapping" => mapping_path = Some(value("--mapping")?),
            "--out" => out_path = Some(value("--out")?),
            "--updates" => {
                updates = value("--updates")?
                    .parse()
                    .map_err(|e| format!("--updates: {e}"))?
            }
            "--updates-out" => updates_path = Some(value("--updates-out")?),
            "--update-seed" => {
                update_seed = value("--update-seed")?
                    .parse()
                    .map_err(|e| format!("--update-seed: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`\n\
                     usage: gendoc [--family university|exchange] [--size-scale K] \
                     [--students N] [--profs N] [--dtd PATH] [--mapping PATH] [--out PATH] \
                     [--updates N --updates-out PATH [--update-seed S]]"
                ))
            }
        }
    }
    if let Some(path) = &dtd_path {
        let dtd = match family {
            Family::University => xmlmap_gen::university_dtd(),
            Family::Exchange => xmlmap_gen::exchange_source_dtd(),
        };
        std::fs::write(path, dtd.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &mapping_path {
        if family != Family::Exchange {
            return Err("--mapping is only meaningful with --family exchange".to_string());
        }
        std::fs::write(path, xmlmap_gen::exchange_mapping().to_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    // University: professors scale with the corpus. Exchange: pads scale
    // (bytes), professors stay pinned (firings) unless --profs overrides.
    let (professors, pads) = match family {
        Family::University => (profs.unwrap_or(BASE_PROFESSORS * scale), 0),
        Family::Exchange => (profs.unwrap_or(BASE_PROFESSORS), BASE_PADS * scale),
    };
    if updates > 0 {
        if family != Family::Exchange {
            return Err("--updates is only meaningful with --family exchange".to_string());
        }
        if professors == 0 || pads == 0 {
            return Err("--updates needs at least one professor and one pad".to_string());
        }
        let path = updates_path
            .as_ref()
            .ok_or("--updates needs --updates-out PATH")?;
        let file = std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
        let mut out = std::io::BufWriter::new(file);
        xmlmap_gen::write_exchange_updates(
            professors,
            students,
            pads,
            updates,
            update_seed,
            &mut out,
        )
        .and_then(|()| out.flush())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("gendoc: wrote {updates} update(s) (seed {update_seed}) to {path}");
    } else if updates_path.is_some() {
        return Err("--updates-out needs --updates N".to_string());
    }
    let write = |mut out: &mut dyn Write| match family {
        Family::University => xmlmap_gen::write_university_xml(professors, students, &mut out),
        Family::Exchange => xmlmap_gen::write_exchange_xml(professors, students, pads, &mut out),
    };
    match &out_path {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
            let mut out = std::io::BufWriter::new(file);
            write(&mut out)
                .and_then(|()| out.flush())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            match family {
                Family::University => eprintln!(
                    "gendoc: wrote {professors} professors ({students} students each) to {path}"
                ),
                Family::Exchange => eprintln!(
                    "gendoc: wrote {professors} professors ({students} students each) \
                     and {pads} pads to {path}"
                ),
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            write(&mut out)
                .and_then(|()| out.flush())
                .map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
