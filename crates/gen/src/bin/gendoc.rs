//! `gendoc` — streams a university-shaped corpus document to a file or
//! stdout for the streaming bench rows and the CI `stream-smoke` job.
//!
//! ```text
//! gendoc [--size-scale K] [--students N] [--dtd PATH] [--out PATH]
//! ```
//!
//! The 1x document is the micro-bench workload `university_tree(160, 3)`;
//! `--size-scale K` emits `160·K` professors (so `--size-scale 100` is the
//! 100x corpus). The document is streamed in O(depth) memory, so multi-GB
//! corpora are fine; `--dtd PATH` additionally writes the matching
//! university DTD for `xmlmap stream`. Generated corpora belong under
//! `corpora/`, which is gitignored.

use std::io::Write;

/// Professors in the 1x document (the micro-bench university workload).
const BASE_PROFESSORS: usize = 160;
/// Students per professor (the micro-bench university workload).
const BASE_STUDENTS: usize = 3;

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale: usize = 1;
    let mut students = BASE_STUDENTS;
    let mut dtd_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--size-scale" => {
                scale = value("--size-scale")?
                    .parse()
                    .map_err(|e| format!("--size-scale: {e}"))?
            }
            "--students" => {
                students = value("--students")?
                    .parse()
                    .map_err(|e| format!("--students: {e}"))?
            }
            "--dtd" => dtd_path = Some(value("--dtd")?),
            "--out" => out_path = Some(value("--out")?),
            other => {
                return Err(format!(
                    "unknown argument `{other}`\n\
                     usage: gendoc [--size-scale K] [--students N] [--dtd PATH] [--out PATH]"
                ))
            }
        }
    }
    if let Some(path) = &dtd_path {
        std::fs::write(path, xmlmap_gen::university_dtd().to_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let professors = BASE_PROFESSORS * scale;
    match &out_path {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
            let mut out = std::io::BufWriter::new(file);
            xmlmap_gen::write_university_xml(professors, students, &mut out)
                .and_then(|()| out.flush())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("gendoc: wrote {professors} professors ({students} students each) to {path}");
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            xmlmap_gen::write_university_xml(professors, students, &mut out)
                .and_then(|()| out.flush())
                .map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
