//! Hard instance families.
//!
//! The paper's lower bounds (EXPTIME-, PSPACE-, NEXPTIME-, Π₂ᵖ-hardness)
//! are statements about *families* of inputs; these constructors build
//! families that exhibit the corresponding blow-ups in our implementations,
//! so the benches can plot the growth shapes behind Figures 1 and 2.

use xmlmap_core::{Mapping, Std};
use xmlmap_dtd::Dtd;
use xmlmap_patterns::{Pattern, SeqOp, Var};
use xmlmap_trees::Tree;

fn dtd(s: &str) -> Dtd {
    xmlmap_dtd::parse(s).expect("static DTD")
}

fn pat(s: &str) -> Pattern {
    xmlmap_patterns::parse(s).expect("static pattern")
}

/// `CONS(⇓)` worst case (Fact 5.1, EXPTIME): `n` independent optional
/// source patterns whose target sides are all unsatisfiable — deciding
/// *inconsistent* forces the procedure through every achievable match set
/// (2ⁿ − 1 of them; only the empty set has a satisfiable target side, and
/// the root production forbids the empty document).
pub fn cons_exptime(n: usize) -> Mapping {
    let labels: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
    let ds = dtd(&format!("root r\nr -> ({})+", labels.join("|")));
    let dt = dtd("root r\nr -> c");
    let stds = (0..n)
        .map(|i| Std::new(pat(&format!("r/a{i}")), pat("r/impossible")))
        .collect();
    Mapping::new(ds, dt, stds)
}

/// `CONS(⇓,→)` over nested-relational DTDs (Prop 5.3, PSPACE-hard):
/// next-sibling chains of growing length over a starred slot. The sequence
/// acceptors multiply inside the type-fixpoint machine.
pub fn cons_nextsib(n: usize) -> Mapping {
    let ds = dtd("root r\nr -> (a|b)*");
    let dt = dtd("root r\nr -> t?");
    let stds = (1..=n)
        .map(|i| {
            // source: a chain a → b → a → b … of length i+1.
            let members: Vec<Pattern> = (0..=i)
                .map(|k| Pattern::leaf(if k % 2 == 0 { "a" } else { "b" }, Vec::<Var>::new()))
                .collect();
            let ops = vec![SeqOp::Next; i];
            let source = Pattern::leaf("r", Vec::<Var>::new()).seq(members, ops);
            Std::new(source, pat("r/t"))
        })
        .collect();
    Mapping::new(ds, dt, stds)
}

/// Pattern-satisfiability blow-up (Lemma 4.1, NP): `n` descendant
/// obligations over a recursive DTD — the engine's subtree-type lattice has
/// 2ⁿ achievable points. Returns `(dtd, pattern)`.
pub fn sat_hard(n: usize) -> (Dtd, Pattern) {
    let leaves: Vec<String> = (0..n).map(|i| format!("a{i}?")).collect();
    let d = dtd(&format!("root r\nr -> u\nu -> u?, {}", leaves.join(", ")));
    let mut p = Pattern::leaf("r", Vec::<Var>::new());
    for i in 0..n {
        p = p.descendant(Pattern::leaf(format!("a{i}").as_str(), Vec::<Var>::new()));
    }
    (d, p)
}

/// Membership combined-complexity family (Thm 4.3, Π₂ᵖ): one std with `n`
/// source variables — an adjacent source window whose target demands the
/// same values in document order. Checking a pair of documents matches an
/// `n`-variable conjunctive pattern on both sides.
pub fn membership_vars(n: usize) -> Mapping {
    let ds = dtd("root r\nr -> a*\na @ v");
    let dt = dtd("root r\nr -> b*\nb @ w");
    let src_members: Vec<Pattern> = (0..n)
        .map(|i| Pattern::leaf("a", [format!("x{i}")]))
        .collect();
    let source = if n == 0 {
        Pattern::leaf("r", Vec::<Var>::new())
    } else {
        let ops = vec![SeqOp::Next; n - 1];
        Pattern::leaf("r", Vec::<Var>::new()).seq(src_members, ops)
    };
    let tgt_members: Vec<Pattern> = (0..n)
        .map(|i| Pattern::leaf("b", [format!("x{i}")]))
        .collect();
    let target = if n == 0 {
        Pattern::leaf("r", Vec::<Var>::new())
    } else {
        let ops = vec![SeqOp::Following; n - 1];
        Pattern::leaf("r", Vec::<Var>::new()).seq(tgt_members, ops)
    };
    Mapping::new(ds, dt, vec![Std::new(source, target)])
}

/// A genuinely hard membership family (Thm 4.3, Π₂ᵖ): `n` *independent*
/// source variables — every combination of source values is a firing — with
/// an order-constrained target. Checking membership enumerates `kⁿ`
/// firings over `k` distinct source values.
pub fn membership_vars_hard(n: usize) -> Mapping {
    let ds = dtd("root r\nr -> a*\na @ v");
    let dt = dtd("root r\nr -> b*\nb @ w");
    let mut source = Pattern::leaf("r", Vec::<Var>::new());
    for i in 0..n {
        source = source.child(Pattern::leaf("a", [format!("x{i}")]));
    }
    let members: Vec<Pattern> = (0..n)
        .map(|i| Pattern::leaf("b", [format!("x{i}")]))
        .collect();
    let target = if n == 0 {
        Pattern::leaf("r", Vec::<Var>::new())
    } else {
        let ops = vec![SeqOp::Following; n - 1];
        Pattern::leaf("r", Vec::<Var>::new()).seq(members, ops)
    };
    Mapping::new(ds, dt, vec![Std::new(source, target)])
}

/// A positive instance for [`membership_vars_hard`]: `k` distinct source
/// values; the target repeats the full value block `n` times, so every
/// length-`n` value sequence occurs in order.
pub fn membership_hard_instance(n: usize, k: usize) -> (Tree, Tree) {
    let mut t1 = Tree::new("r");
    let mut t3 = Tree::new("r");
    for i in 0..k {
        t1.add_child(
            Tree::ROOT,
            "a",
            [("v", xmlmap_trees::Value::str(format!("v{i}")))],
        );
    }
    for _ in 0..n.max(1) {
        for i in 0..k {
            t3.add_child(
                Tree::ROOT,
                "b",
                [("w", xmlmap_trees::Value::str(format!("v{i}")))],
            );
        }
    }
    (t1, t3)
}

/// Source/target documents for [`membership_vars`]: `k` source values and
/// the target holding them in order (a positive instance).
pub fn membership_instance(k: usize) -> (Tree, Tree) {
    let mut t1 = Tree::new("r");
    let mut t3 = Tree::new("r");
    for i in 0..k {
        t1.add_child(
            Tree::ROOT,
            "a",
            [("v", xmlmap_trees::Value::str(format!("v{i}")))],
        );
        t3.add_child(
            Tree::ROOT,
            "b",
            [("w", xmlmap_trees::Value::str(format!("v{i}")))],
        );
    }
    (t1, t3)
}

/// A copy chain for composition benches: `M₁₂ : a→b`, `M₂₃ : b→c` over
/// starred slots, with `extra` additional independent stds on each side to
/// grow the mapping size.
pub fn compose_chain(extra: usize) -> (Mapping, Mapping) {
    let mk_labels = |prefix: &str| -> String {
        let mut parts = vec![format!("{prefix}0*")];
        parts.extend((1..=extra).map(|i| format!("{prefix}{i}*")));
        parts.join(", ")
    };
    let ds = dtd(&format!(
        "root r\nr -> {}\n{}",
        mk_labels("a"),
        (0..=extra)
            .map(|i| format!("a{i} @ v"))
            .collect::<Vec<_>>()
            .join("\n")
    ));
    let dm = dtd(&format!(
        "root m\nm -> {}\n{}",
        mk_labels("b"),
        (0..=extra)
            .map(|i| format!("b{i} @ w"))
            .collect::<Vec<_>>()
            .join("\n")
    ));
    let dt = dtd(&format!(
        "root w\nw -> {}\n{}",
        mk_labels("c"),
        (0..=extra)
            .map(|i| format!("c{i} @ u"))
            .collect::<Vec<_>>()
            .join("\n")
    ));
    let m12 = Mapping::new(
        ds,
        dm.clone(),
        (0..=extra)
            .map(|i| Std::parse(&format!("r/a{i}(x) --> m/b{i}(x)")).unwrap())
            .collect(),
    );
    let m23 = Mapping::new(
        dm,
        dt,
        (0..=extra)
            .map(|i| Std::parse(&format!("m/b{i}(x) --> w/c{i}(x)")).unwrap())
            .collect(),
    );
    (m12, m23)
}

/// Absolute-consistency PTIME family (Thm 6.3): chain DTDs of depth `n`
/// with one std per level, all inside the tractable fragment.
pub fn abscons_chain(n: usize) -> Mapping {
    let mut src_lines = vec!["root r".to_string()];
    let mut parent = "r".to_string();
    for i in 0..n {
        src_lines.push(format!("{parent} -> s{i}*"));
        src_lines.push(format!("s{i} @ v"));
        parent = format!("s{i}");
    }
    let mut tgt_lines = vec!["root r".to_string()];
    let mut tparent = "r".to_string();
    for i in 0..n {
        tgt_lines.push(format!("{tparent} -> t{i}*"));
        tgt_lines.push(format!("t{i} @ w"));
        tparent = format!("t{i}");
    }
    let ds = dtd(&src_lines.join("\n"));
    let dt = dtd(&tgt_lines.join("\n"));
    let stds = (0..n)
        .map(|i| {
            let src_path: String = (0..=i).fold("r".to_string(), |acc, k| {
                if k == i {
                    format!("{acc}/s{k}(x)")
                } else {
                    format!("{acc}/s{k}(y{k})")
                }
            });
            let tgt_path: String = (0..=i).fold("r".to_string(), |acc, k| {
                if k == i {
                    format!("{acc}/t{k}(x)")
                } else {
                    format!("{acc}/t{k}(z{k})")
                }
            });
            Std::parse(&format!("{src_path} --> {tgt_path}")).unwrap()
        })
        .collect();
    Mapping::new(ds, dt, stds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlmap_core::consistency;

    #[test]
    fn cons_exptime_family_is_inconsistent() {
        for n in 1..=3 {
            let m = cons_exptime(n);
            let ans = consistency::consistent(&m, 2_000_000).unwrap();
            assert!(!ans.is_consistent(), "n={n}");
        }
    }

    #[test]
    fn cons_nextsib_family_is_consistent() {
        for n in 1..=3 {
            let m = cons_nextsib(n);
            let ans = consistency::consistent(&m, 2_000_000).unwrap();
            assert!(ans.is_consistent(), "n={n}");
        }
    }

    #[test]
    fn sat_hard_family_is_satisfiable() {
        for n in 1..=4 {
            let (d, p) = sat_hard(n);
            let w = xmlmap_patterns::satisfiable(&d, &p, 2_000_000)
                .unwrap()
                .expect("satisfiable");
            assert!(d.conforms(&w));
            assert!(xmlmap_patterns::matches(&w, &p));
        }
    }

    #[test]
    fn membership_family_behaves() {
        for n in 1..=3 {
            let m = membership_vars(n);
            let (t1, t3) = membership_instance(n);
            assert!(m.is_solution(&t1, &t3), "n={n}");
            // Reversed target violates the order constraint for n ≥ 2
            // (two or more values must appear in document order).
            if n >= 2 {
                let mut rev = Tree::new("r");
                for i in (0..n).rev() {
                    rev.add_child(
                        Tree::ROOT,
                        "b",
                        [("w", xmlmap_trees::Value::str(format!("v{i}")))],
                    );
                }
                assert!(!m.is_solution(&t1, &rev), "n={n}");
            }
        }
    }

    #[test]
    fn membership_hard_family_behaves() {
        for n in 1..=3 {
            let m = membership_vars_hard(n);
            let (t1, t3) = membership_hard_instance(n, 2);
            assert!(m.is_solution(&t1, &t3), "n={n}");
        }
        // A target missing a value is not a solution.
        let m = membership_vars_hard(2);
        let (t1, _) = membership_hard_instance(2, 2);
        let mut bad = Tree::new("r");
        bad.add_child(Tree::ROOT, "b", [("w", xmlmap_trees::Value::str("v0"))]);
        assert!(!m.is_solution(&t1, &bad));
    }

    #[test]
    fn compose_chain_composes() {
        let (m12, m23) = compose_chain(1);
        let s12 = xmlmap_core::SkolemMapping::from_mapping(&m12).unwrap();
        let s23 = xmlmap_core::SkolemMapping::from_mapping(&m23).unwrap();
        let s13 = xmlmap_core::compose(&s12, &s23).unwrap();
        assert_eq!(s13.stds.len(), 2);
    }

    #[test]
    fn abscons_chain_is_absolutely_consistent() {
        for n in 1..=4 {
            let m = abscons_chain(n);
            let ans = xmlmap_core::abscons_nr_ptime(&m).expect("fragment");
            assert!(ans.holds(), "n={n}");
        }
    }
}
