//! Random schema-mapping generation, parameterised by signature.
//!
//! Used by the benches (data/combined complexity sweeps) and by the
//! cross-validation property tests (fast fragment algorithms vs. the
//! bounded brute-force oracles).

use rand::prelude::*;
use xmlmap_core::{Mapping, Std};
use xmlmap_dtd::{Dtd, Mult};
use xmlmap_patterns::{Pattern, Var};
use xmlmap_trees::Name;

/// Parameters for random mapping generation.
#[derive(Clone, Debug)]
pub struct MappingGenConfig {
    /// Number of stds.
    pub stds: usize,
    /// Maximum pattern depth on each side.
    pub depth: usize,
    /// Probability that a slot is included when growing a pattern.
    pub branch_probability: f64,
}

impl Default for MappingGenConfig {
    fn default() -> Self {
        MappingGenConfig {
            stds: 3,
            depth: 4,
            branch_probability: 0.7,
        }
    }
}

/// Generates a random *fully-specified, downward* mapping between two
/// nested-relational DTDs: source patterns sample subtrees of the source
/// DTD, target patterns sample subtrees of the target DTD, and source
/// variables are threaded into target slots where arities allow.
///
/// Returns `None` if either DTD is not nested-relational.
pub fn random_nr_mapping(
    source_dtd: &Dtd,
    target_dtd: &Dtd,
    config: &MappingGenConfig,
    rng: &mut impl Rng,
) -> Option<Mapping> {
    source_dtd.nested_relational()?;
    target_dtd.nested_relational()?;
    let mut stds = Vec::new();
    let mut var_counter = 0usize;
    for _ in 0..config.stds {
        let mut source_vars = Vec::new();
        let source = random_nr_pattern(
            source_dtd,
            source_dtd.root(),
            config.depth,
            config,
            &mut var_counter,
            &mut source_vars,
            rng,
        );
        // Target: fresh existential variables, then substitute some by
        // shared source variables (arity-compatible positions).
        let mut target_vars = Vec::new();
        let mut target = random_nr_pattern(
            target_dtd,
            target_dtd.root(),
            config.depth,
            config,
            &mut var_counter,
            &mut target_vars,
            rng,
        );
        if !source_vars.is_empty() {
            rewire_vars(&mut target, &source_vars, rng);
        }
        stds.push(Std::new(source, target));
    }
    Some(Mapping::new(source_dtd.clone(), target_dtd.clone(), stds))
}

/// Grows a fully-specified pattern downwards from `label`.
#[allow(clippy::too_many_arguments)]
fn random_nr_pattern(
    dtd: &Dtd,
    label: &Name,
    depth: usize,
    config: &MappingGenConfig,
    var_counter: &mut usize,
    vars_out: &mut Vec<Var>,
    rng: &mut impl Rng,
) -> Pattern {
    let vars: Vec<Var> = dtd
        .attrs(label)
        .iter()
        .map(|_| {
            let v = Var::new(format!("x{}", *var_counter));
            *var_counter += 1;
            vars_out.push(v.clone());
            v
        })
        .collect();
    let mut pattern = Pattern::leaf(label.clone(), vars);
    if depth == 0 {
        return pattern;
    }
    let nr = dtd.nested_relational().expect("checked by caller");
    let slots: Vec<(Name, Mult)> = nr.slots(label).to_vec();
    for (child, _) in slots {
        if rng.gen_bool(config.branch_probability) {
            let sub = random_nr_pattern(dtd, &child, depth - 1, config, var_counter, vars_out, rng);
            pattern = pattern.child(sub);
        }
    }
    pattern
}

/// Replaces each variable of the pattern by a random source variable with
/// probability 1/2 (making it shared), keeping it existential otherwise.
fn rewire_vars(pattern: &mut Pattern, source_vars: &[Var], rng: &mut impl Rng) {
    for v in pattern.vars.iter_mut() {
        if rng.gen_bool(0.5) {
            *v = source_vars[rng.gen_range(0..source_vars.len())].clone();
        }
    }
    for item in pattern.list.iter_mut() {
        match item {
            xmlmap_patterns::ListItem::Seq { members, .. } => {
                for m in members {
                    rewire_vars(m, source_vars, rng);
                }
            }
            xmlmap_patterns::ListItem::Descendant(d) => rewire_vars(d, source_vars, rng),
        }
    }
}

/// A random nested-relational DTD: a label tree of the given depth and
/// fanout, with random multiplicities and attribute counts.
pub fn random_nr_dtd(
    depth: usize,
    fanout: usize,
    attr_probability: f64,
    rng: &mut impl Rng,
) -> Dtd {
    let mut builder = Dtd::builder("r");
    let mut counter = 0usize;
    // Breadth-first construction of a label tree.
    let mut frontier: Vec<(Name, usize)> = vec![(Name::new("r"), 0)];
    let mut productions: Vec<(Name, Vec<(Name, Mult)>)> = Vec::new();
    let mut attr_lists: Vec<(Name, usize)> = Vec::new();
    while let Some((label, level)) = frontier.pop() {
        if label.as_str() != "r" && rng.gen_bool(attr_probability) {
            attr_lists.push((label.clone(), rng.gen_range(1..=2)));
        }
        if level >= depth {
            continue;
        }
        let n = rng.gen_range(1..=fanout);
        let mut slots = Vec::new();
        for _ in 0..n {
            counter += 1;
            let child = Name::new(format!("e{counter}"));
            let mult = match rng.gen_range(0..4) {
                0 => Mult::One,
                1 => Mult::Opt,
                2 => Mult::Star,
                _ => Mult::Plus,
            };
            slots.push((child.clone(), mult));
            frontier.push((child, level + 1));
        }
        productions.push((label, slots));
    }
    for (label, slots) in productions {
        let body = slots
            .iter()
            .map(|(l, m)| {
                let sym = xmlmap_regex::Regex::Symbol(l.clone());
                match m {
                    Mult::One => sym,
                    Mult::Opt => sym.opt(),
                    Mult::Star => sym.star(),
                    Mult::Plus => sym.plus(),
                }
            })
            .collect::<Vec<_>>();
        builder = builder.production(label, xmlmap_regex::Regex::concat(body));
    }
    for (label, n) in attr_lists {
        let attrs: Vec<Name> = (0..n).map(|i| Name::new(format!("a{i}"))).collect();
        builder = builder.attrs(label, attrs);
    }
    builder.build().expect("generated DTD is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_dtds_are_nested_relational() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let d = random_nr_dtd(3, 3, 0.5, &mut rng);
            assert!(d.is_nested_relational(), "{d}");
            assert!(!d.is_recursive());
        }
    }

    #[test]
    fn random_mappings_are_downward_fully_specified() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let ds = random_nr_dtd(3, 2, 0.6, &mut rng);
            let dt = random_nr_dtd(3, 2, 0.6, &mut rng);
            let m = random_nr_mapping(&ds, &dt, &MappingGenConfig::default(), &mut rng)
                .expect("NR inputs");
            assert!(m.is_fully_specified());
            let sig = m.signature();
            assert!(sig.is_downward());
            assert!(!sig.descendant && !sig.neq && !sig.wildcard);
        }
    }

    #[test]
    fn generated_source_patterns_fire_on_random_documents() {
        // Smoke test: patterns grown from the DTD match a reasonably
        // generous random document often enough to be useful workloads.
        let mut rng = StdRng::seed_from_u64(5);
        let ds = random_nr_dtd(2, 2, 0.8, &mut rng);
        let m = random_nr_mapping(&ds, &ds, &MappingGenConfig::default(), &mut rng).unwrap();
        let config = crate::trees::TreeGenConfig {
            continue_probability: 0.8,
            ..Default::default()
        };
        let mut fired = 0;
        for _ in 0..50 {
            let t = crate::trees::random_tree(&ds, &config, &mut rng);
            for s in &m.stds {
                fired += usize::from(!s.firings(&t).is_empty());
            }
        }
        assert!(fired > 0, "no std ever fired across 50 documents");
    }
}
