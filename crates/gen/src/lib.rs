#![warn(missing_docs)]

//! # xmlmap-gen
//!
//! Workload generators for the *XML Schema Mappings* reproduction: random
//! conforming documents, random nested-relational mappings, the paper's
//! running university scenario, and the hard instance families behind the
//! complexity benches (Figures 1 and 2).

pub mod hard;
pub mod mappings;
pub mod trees;

pub use mappings::{random_nr_dtd, random_nr_mapping, MappingGenConfig};
pub use trees::{
    exchange_mapping, exchange_source_dtd, exchange_tree, random_tree, university_dtd,
    university_target_dtd, university_tree, write_exchange_updates, write_exchange_xml,
    write_university_xml, TreeGenConfig,
};
