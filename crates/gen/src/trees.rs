//! Random document generation.
//!
//! Samples conforming documents for a DTD: children words are drawn by a
//! random walk on the production's Glushkov NFA (biased towards acceptance
//! so documents stay finite), attribute values come from a bounded pool so
//! that equality joins actually fire in benchmarks.

use rand::prelude::*;
use xmlmap_dtd::Dtd;
use xmlmap_trees::{Name, NodeId, Tree, Value};

/// Parameters for random document generation.
#[derive(Clone, Debug)]
pub struct TreeGenConfig {
    /// Probability of *continuing* a repeatable construct at each step
    /// (also the bias towards taking transitions over stopping early).
    pub continue_probability: f64,
    /// Number of distinct attribute values to draw from.
    pub value_pool: usize,
    /// Hard cap on the number of nodes (generation stops expanding).
    pub max_nodes: usize,
}

impl Default for TreeGenConfig {
    fn default() -> Self {
        TreeGenConfig {
            continue_probability: 0.5,
            value_pool: 8,
            max_nodes: 10_000,
        }
    }
}

/// Samples a document conforming to `dtd`.
///
/// The walk chooses, at each NFA state of the current production, either to
/// stop (if the state accepts) or to follow a uniformly random transition;
/// dead ends restart the word. Recursive DTDs stay finite because every
/// production walk is itself finite and the node cap bounds expansion (the
/// cap trims only repeatable constructs, so the result still conforms).
pub fn random_tree(dtd: &Dtd, config: &TreeGenConfig, rng: &mut impl Rng) -> Tree {
    let mut tree = Tree::with_root_attrs(
        dtd.root().clone(),
        random_attrs(dtd, dtd.root(), config, rng),
    );
    let mut queue: Vec<NodeId> = vec![Tree::ROOT];
    while let Some(node) = queue.pop() {
        let label = tree.label(node).clone();
        // Over the cap, emit the shortest (mandatory-only) word so the
        // document still conforms.
        let word = if tree.size() >= config.max_nodes {
            dtd.horizontal(&label)
                .and_then(|nfa| nfa.shortest_word())
                .unwrap_or_default()
        } else {
            random_word(dtd, &label, config, rng)
        };
        for child_label in word {
            let attrs = random_attrs(dtd, &child_label, config, rng);
            let child = tree.add_child(node, child_label, attrs);
            queue.push(child);
        }
    }
    tree
}

fn random_attrs(
    dtd: &Dtd,
    label: &Name,
    config: &TreeGenConfig,
    rng: &mut impl Rng,
) -> Vec<(Name, Value)> {
    dtd.attrs(label)
        .iter()
        .map(|a| {
            let v = rng.gen_range(0..config.value_pool.max(1));
            (a.clone(), Value::str(format!("v{v}")))
        })
        .collect()
}

/// Random accepted word of the production of `label`.
fn random_word(dtd: &Dtd, label: &Name, config: &TreeGenConfig, rng: &mut impl Rng) -> Vec<Name> {
    let Some(nfa) = dtd.horizontal(label) else {
        return Vec::new();
    };
    // Distance-to-acceptance per state, to steer dead ends home.
    let dist = distances_to_acceptance(nfa);
    'retry: for _ in 0..64 {
        let mut word = Vec::new();
        let mut state = 0usize;
        loop {
            let can_stop = nfa.accepting[state];
            let transitions = &nfa.transitions[state];
            if transitions.is_empty() {
                if can_stop {
                    return word;
                }
                continue 'retry; // dead end (shouldn't happen with dist)
            }
            if can_stop && (word.len() >= 64 || !rng.gen_bool(config.continue_probability)) {
                return word;
            }
            // Prefer transitions that lead somewhere useful.
            let viable: Vec<&(Name, usize)> = transitions
                .iter()
                .filter(|(_, q)| dist[*q] < usize::MAX)
                .collect();
            if viable.is_empty() {
                continue 'retry;
            }
            // Past the soft cap, steer towards acceptance.
            let pick = if word.len() >= 64 {
                viable
                    .iter()
                    .min_by_key(|(_, q)| dist[*q])
                    .expect("viable nonempty")
            } else {
                viable[rng.gen_range(0..viable.len())]
            };
            word.push(pick.0.clone());
            state = pick.1;
        }
    }
    // Fall back to a shortest accepted word.
    nfa.shortest_word().unwrap_or_default()
}

fn distances_to_acceptance(nfa: &xmlmap_regex::Nfa<Name>) -> Vec<usize> {
    let mut dist = vec![usize::MAX; nfa.num_states];
    // Reverse BFS from accepting states.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); nfa.num_states];
    for (q, ts) in nfa.transitions.iter().enumerate() {
        for (_, q2) in ts {
            reverse[*q2].push(q);
        }
    }
    let mut queue = std::collections::VecDeque::new();
    for (q, d) in dist.iter_mut().enumerate() {
        if nfa.accepting[q] {
            *d = 0;
            queue.push_back(q);
        }
    }
    while let Some(q) = queue.pop_front() {
        for &p in &reverse[q] {
            if dist[p] == usize::MAX {
                dist[p] = dist[q] + 1;
                queue.push_back(p);
            }
        }
    }
    dist
}

/// Deterministically builds a university document (the paper's intro
/// scenario) with `professors` professors, 2 courses each, and `students`
/// students per professor — the standard source workload for benches.
pub fn university_tree(professors: usize, students: usize) -> Tree {
    let mut t = Tree::new("r");
    for p in 0..professors {
        let prof = t.add_child(Tree::ROOT, "prof", [("name", Value::str(format!("p{p}")))]);
        let teach = t.add_elem(prof, "teach");
        let year = t.add_child(teach, "year", [("y", Value::str(format!("y{}", p % 4)))]);
        t.add_child(year, "course", [("cno", Value::str(format!("c{}", 2 * p)))]);
        t.add_child(
            year,
            "course",
            [("cno", Value::str(format!("c{}", 2 * p + 1)))],
        );
        let sup = t.add_elem(prof, "supervise");
        for s in 0..students {
            t.add_child(sup, "student", [("sid", Value::str(format!("s{p}_{s}")))]);
        }
    }
    t
}

/// The university source DTD `D₁` from the paper's introduction.
pub fn university_dtd() -> Dtd {
    xmlmap_dtd::parse(
        "root r
         r -> prof*
         prof -> teach, supervise
         teach -> year
         year -> course, course
         supervise -> student*
         prof @ name
         student @ sid
         year @ y
         course @ cno",
    )
    .expect("static DTD")
}

/// The university target DTD `D₂` from the paper's introduction.
pub fn university_target_dtd() -> Dtd {
    xmlmap_dtd::parse(
        "root r
         r -> course*, student*
         course -> taughtby
         student -> supervisor
         course @ cno, year
         student @ sid
         taughtby @ teacher
         supervisor @ name",
    )
    .expect("static DTD")
}

/// The exchange-corpus source DTD: the university DTD extended with a
/// tail of inert `pad` records (`r -> prof*, pad*`). Pads conform but
/// match no std source, so corpus **bytes** scale with the pad count
/// while chase **firings** stay proportional to the professor count —
/// the knob the flat-RSS streaming-chase benches and CI turn.
pub fn exchange_source_dtd() -> Dtd {
    xmlmap_dtd::parse(
        "root r
         r -> prof*, pad*
         prof -> teach, supervise
         teach -> year
         year -> course, course
         supervise -> student*
         prof @ name
         student @ sid
         year @ y
         course @ cno
         pad @ a, b",
    )
    .expect("static DTD")
}

/// The exchange mapping: the paper's two university stds over
/// [`exchange_source_dtd`] (pads are simply never matched) into the
/// university target DTD. `Display` round-trips through
/// `Mapping::parse`, so `gendoc --mapping` can write it to a file for
/// `xmlmap stream --chase`.
pub fn exchange_mapping() -> xmlmap_core::Mapping {
    let std1 = xmlmap_core::Std::parse(
        "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]]]] \
         --> r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)]]",
    )
    .expect("static std");
    let std2 = xmlmap_core::Std::parse(
        "r[prof(x)[supervise[student(s)]]] --> r[student(s)[supervisor(x)]]",
    )
    .expect("static std");
    xmlmap_core::Mapping::new(
        exchange_source_dtd(),
        university_target_dtd(),
        vec![std1, std2],
    )
}

/// Deterministically builds an exchange document: the university body
/// for `professors`/`students` followed by `pads` inert pad records.
pub fn exchange_tree(professors: usize, students: usize, pads: usize) -> Tree {
    let mut t = university_tree(professors, students);
    for i in 0..pads {
        t.add_child(
            Tree::ROOT,
            "pad",
            [
                ("a", Value::str(format!("a{}", i % 10))),
                ("b", Value::str(format!("b{}", i % 10))),
            ],
        );
    }
    t
}

/// Streams the exchange document straight to `out` — byte-for-byte the
/// `xmlmap_trees::xml::to_string` serialisation of [`exchange_tree`] —
/// in O(depth) space, so the ~90MB CI corpus never materialises a tree.
pub fn write_exchange_xml<W: std::io::Write>(
    professors: usize,
    students: usize,
    pads: usize,
    out: &mut W,
) -> std::io::Result<()> {
    if professors == 0 && pads == 0 {
        return writeln!(out, "<r/>");
    }
    writeln!(out, "<r>")?;
    write_professors(professors, students, out)?;
    for i in 0..pads {
        writeln!(out, "  <pad a=\"a{0}\" b=\"b{0}\"/>", i % 10)?;
    }
    writeln!(out, "</r>")
}

/// Streams a deterministic update storm for the exchange document shaped
/// by [`write_exchange_xml`]: `count` operation lines in the `xmlmap
/// delta` updatefile grammar, drawn from a seeded generator. Every
/// operation (or delete/reinsert pair) preserves conformance *and* the
/// root's child count, so the emitted child indices stay valid no matter
/// where in the storm they execute. Most operations rewrite inert pad
/// records — the incremental chase skips every std on those — while a
/// seeded fraction deletes and reinserts a whole professor subtree,
/// exercising firing retraction and replay.
///
/// Panics if `count > 0` while `professors` or `pads` is zero: the storm
/// needs both kinds of record to aim at.
pub fn write_exchange_updates<W: std::io::Write>(
    professors: usize,
    students: usize,
    pads: usize,
    count: usize,
    seed: u64,
    out: &mut W,
) -> std::io::Result<()> {
    assert!(
        count == 0 || (professors > 0 && pads > 0),
        "the exchange update storm needs at least one professor and one pad"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    writeln!(
        out,
        "# {count} update(s) over the exchange corpus (seed {seed})"
    )?;
    let mut emitted = 0usize;
    while emitted < count {
        let pair_ok = count - emitted >= 2;
        match rng.gen_range(0..10u32) {
            // Pad delete/reinsert: a no-refire structural edit.
            7 if pair_ok => {
                let pos = professors + rng.gen_range(0..pads);
                writeln!(out, "delete {pos}")?;
                writeln!(
                    out,
                    "insert . {pos} <pad a=\"a{}\" b=\"b{}\"/>",
                    rng.gen_range(0..10u32),
                    rng.gen_range(0..10u32)
                )?;
                emitted += 2;
            }
            // Professor delete/reinsert: retracts this professor's
            // firings, then replays them.
            8 | 9 if pair_ok => {
                let p = rng.gen_range(0..professors);
                writeln!(out, "delete {p}")?;
                writeln!(out, "insert . {p} {}", professor_xml(p, students))?;
                emitted += 2;
            }
            // Pad attribute rewrite: the skip fast path.
            _ => {
                let pos = professors + rng.gen_range(0..pads);
                let (attr, prefix) = if rng.gen_bool(0.5) {
                    ("a", 'a')
                } else {
                    ("b", 'b')
                };
                writeln!(
                    out,
                    "settext {pos} {attr} {prefix}{}",
                    rng.gen_range(0..10u32)
                )?;
                emitted += 1;
            }
        }
    }
    Ok(())
}

/// One professor subtree as single-line XML — the exact content
/// [`write_professors`] gives professor `p`, so a delete/reinsert pair
/// restores the document byte-for-byte.
fn professor_xml(p: usize, students: usize) -> String {
    let mut s = format!(
        "<prof name=\"p{p}\"><teach><year y=\"y{}\"><course cno=\"c{}\"/>\
         <course cno=\"c{}\"/></year></teach>",
        p % 4,
        2 * p,
        2 * p + 1
    );
    if students == 0 {
        s.push_str("<supervise/>");
    } else {
        s.push_str("<supervise>");
        for st in 0..students {
            s.push_str(&format!("<student sid=\"s{p}_{st}\"/>"));
        }
        s.push_str("</supervise>");
    }
    s.push_str("</prof>");
    s
}

/// Streams the university document for `professors` professors straight
/// to `out` — byte-for-byte the `xmlmap_trees::xml::to_string`
/// serialisation of [`university_tree`] — without ever materialising the
/// tree, so corpora far larger than memory can be generated in O(depth)
/// space (the producer-side twin of `xmlmap stream`).
pub fn write_university_xml<W: std::io::Write>(
    professors: usize,
    students: usize,
    out: &mut W,
) -> std::io::Result<()> {
    if professors == 0 {
        return writeln!(out, "<r/>");
    }
    writeln!(out, "<r>")?;
    write_professors(professors, students, out)?;
    writeln!(out, "</r>")
}

fn write_professors<W: std::io::Write>(
    professors: usize,
    students: usize,
    out: &mut W,
) -> std::io::Result<()> {
    for p in 0..professors {
        writeln!(out, "  <prof name=\"p{p}\">")?;
        writeln!(out, "    <teach>")?;
        writeln!(out, "      <year y=\"y{}\">", p % 4)?;
        writeln!(out, "        <course cno=\"c{}\"/>", 2 * p)?;
        writeln!(out, "        <course cno=\"c{}\"/>", 2 * p + 1)?;
        writeln!(out, "      </year>")?;
        writeln!(out, "    </teach>")?;
        if students == 0 {
            writeln!(out, "    <supervise/>")?;
        } else {
            writeln!(out, "    <supervise>")?;
            for s in 0..students {
                writeln!(out, "      <student sid=\"s{p}_{s}\"/>")?;
            }
            writeln!(out, "    </supervise>")?;
        }
        writeln!(out, "  </prof>")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn streamed_university_matches_the_tree_serialisation() {
        for (p, s) in [(0, 0), (1, 0), (3, 2), (7, 3)] {
            let mut streamed = Vec::new();
            write_university_xml(p, s, &mut streamed).unwrap();
            assert_eq!(
                String::from_utf8(streamed).unwrap(),
                xmlmap_trees::xml::to_string(&university_tree(p, s)),
                "professors={p} students={s}"
            );
        }
    }

    #[test]
    fn streamed_exchange_matches_the_tree_serialisation() {
        for (p, s, pads) in [(0, 0, 0), (0, 0, 4), (1, 0, 0), (3, 2, 11), (7, 3, 25)] {
            let mut streamed = Vec::new();
            write_exchange_xml(p, s, pads, &mut streamed).unwrap();
            assert_eq!(
                String::from_utf8(streamed).unwrap(),
                xmlmap_trees::xml::to_string(&exchange_tree(p, s, pads)),
                "professors={p} students={s} pads={pads}"
            );
        }
    }

    #[test]
    fn exchange_trees_conform_and_pads_are_inert() {
        let d = exchange_source_dtd();
        let m = exchange_mapping();
        for (p, s, pads) in [(0, 0, 3), (2, 1, 0), (4, 2, 50)] {
            let t = exchange_tree(p, s, pads);
            assert!(d.conforms(&t), "professors={p} students={s} pads={pads}");
            assert_eq!(t.size(), 1 + p * (6 + s) + pads);
        }
        // Pads add bytes but no firings: the same chase solution (modulo
        // nulls) comes out regardless of the pad count.
        let lean = xmlmap_core::canonical_solution(&m, &exchange_tree(3, 2, 0)).expect("chases");
        let padded = xmlmap_core::canonical_solution(&m, &exchange_tree(3, 2, 40)).expect("chases");
        assert!(xmlmap_trees::isomorphic_mod_nulls(&lean, &padded));
    }

    #[test]
    fn update_storms_apply_cleanly_and_match_a_full_rechase() {
        let (p, s, pads) = (4, 2, 12);
        let mut script = Vec::new();
        write_exchange_updates(p, s, pads, 60, 0xD317A, &mut script).unwrap();
        let script = String::from_utf8(script).unwrap();
        // Same seed, same bytes: the storm is deterministic.
        let mut again = Vec::new();
        write_exchange_updates(p, s, pads, 60, 0xD317A, &mut again).unwrap();
        assert_eq!(String::from_utf8(again).unwrap(), script);

        let updates = xmlmap_core::parse_updates(&script).unwrap();
        assert_eq!(updates.len(), 60, "comments don't count as operations");
        let m = exchange_mapping();
        let mut session = xmlmap_core::IncrementalChase::new(&m, exchange_tree(p, s, pads));
        for u in &updates {
            session.apply(u).unwrap();
        }
        // Every operation preserved conformance and the child count.
        assert!(exchange_source_dtd().conforms(session.doc()));
        assert_eq!(session.doc().children(Tree::ROOT).len(), p + pads);
        let full = xmlmap_core::canonical_solution(&m, session.doc()).unwrap();
        let incremental = session.canonical_solution().unwrap();
        assert_eq!(incremental, full);
    }

    #[test]
    fn random_trees_conform() {
        let mut rng = StdRng::seed_from_u64(42);
        let dtds = [
            university_dtd(),
            university_target_dtd(),
            xmlmap_dtd::parse("root r\nr -> (a|b)*, c?\na -> c*\nc @ v").unwrap(),
            xmlmap_dtd::parse("root r\nr -> a\na -> a?, b\nb @ x, y").unwrap(), // recursive
        ];
        for dtd in &dtds {
            for _ in 0..25 {
                let t = random_tree(dtd, &TreeGenConfig::default(), &mut rng);
                assert!(dtd.conforms(&t), "{dtd}\n{t:?}");
            }
        }
    }

    #[test]
    fn size_scales_with_continue_probability() {
        let dtd = xmlmap_dtd::parse("root r\nr -> a*").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let small: usize = (0..50)
            .map(|_| {
                random_tree(
                    &dtd,
                    &TreeGenConfig {
                        continue_probability: 0.2,
                        ..Default::default()
                    },
                    &mut rng,
                )
                .size()
            })
            .sum();
        let large: usize = (0..50)
            .map(|_| {
                random_tree(
                    &dtd,
                    &TreeGenConfig {
                        continue_probability: 0.9,
                        ..Default::default()
                    },
                    &mut rng,
                )
                .size()
            })
            .sum();
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    fn node_cap_respected_on_recursive_dtds() {
        let dtd = xmlmap_dtd::parse("root r\nr -> a\na -> a*, b?\nb -> ").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let config = TreeGenConfig {
            continue_probability: 0.95,
            max_nodes: 200,
            ..Default::default()
        };
        for _ in 0..10 {
            let t = random_tree(&dtd, &config, &mut rng);
            // Cap plus one production's worth of slack.
            assert!(t.size() <= 200 + 64, "{}", t.size());
            assert!(dtd.conforms(&t));
        }
    }

    #[test]
    fn university_tree_conforms_and_scales() {
        let d = university_dtd();
        for (p, s) in [(0, 0), (1, 1), (5, 3), (20, 10)] {
            let t = university_tree(p, s);
            assert!(d.conforms(&t));
            assert_eq!(t.size(), 1 + p * (6 + s));
        }
    }
}
