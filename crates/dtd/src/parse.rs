//! Textual DTD syntax.
//!
//! A compact line-oriented format mirroring how the paper writes DTDs:
//!
//! ```text
//! root r
//! r    -> prof*
//! prof -> teach, supervise
//! teach -> year
//! year -> course, course
//! supervise -> student*
//! prof    @ name
//! student @ sid
//! year    @ y
//! course  @ cno
//! ```
//!
//! * `root ℓ` declares the root (optional: defaults to the LHS of the first
//!   production);
//! * `ℓ -> e` is a production with `e` in `xmlmap-regex` syntax (an empty
//!   body means ε);
//! * `ℓ @ a₁, a₂, …` declares the ordered attribute list of `ℓ`;
//! * `#` starts a comment; blank lines are ignored.

use crate::dtd::{Dtd, DtdError};
use std::fmt;
use xmlmap_regex::Regex;
use xmlmap_trees::Name;

/// Errors raised while parsing the textual DTD format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDtdError {
    /// A line could not be interpreted.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// No production or root declaration was found.
    Empty,
    /// The assembled DTD failed validation.
    Invalid(DtdError),
}

impl fmt::Display for ParseDtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDtdError::BadLine { line, message } => {
                write!(f, "DTD parse error on line {line}: {message}")
            }
            ParseDtdError::Empty => write!(f, "DTD text contains no productions"),
            ParseDtdError::Invalid(e) => write!(f, "invalid DTD: {e}"),
        }
    }
}

impl std::error::Error for ParseDtdError {}

fn is_name(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.'))
}

/// Parses the line-oriented DTD format described at the module level.
pub fn parse(input: &str) -> Result<Dtd, ParseDtdError> {
    let mut root: Option<Name> = None;
    let mut productions: Vec<(Name, Regex)> = Vec::new();
    let mut attributes: Vec<(Name, Vec<Name>)> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let bad = |message: String| ParseDtdError::BadLine {
            line: line_no,
            message,
        };

        if let Some(rest) = line.strip_prefix("root ") {
            let name = rest.trim();
            if !is_name(name) {
                return Err(bad(format!("bad root name {name:?}")));
            }
            if root.is_some() {
                return Err(bad("duplicate root declaration".into()));
            }
            root = Some(Name::new(name));
        } else if let Some((lhs, rhs)) = line.split_once("->") {
            let lhs = lhs.trim();
            if !is_name(lhs) {
                return Err(bad(format!("bad element name {lhs:?}")));
            }
            let body = xmlmap_regex::parse(rhs.trim())
                .map_err(|e| bad(format!("bad production body: {e}")))?;
            if productions.iter().any(|(l, _)| l.as_str() == lhs) {
                return Err(bad(format!("duplicate production for {lhs}")));
            }
            productions.push((Name::new(lhs), body));
        } else if let Some((lhs, rhs)) = line.split_once('@') {
            let lhs = lhs.trim();
            if !is_name(lhs) {
                return Err(bad(format!("bad element name {lhs:?}")));
            }
            let mut attrs = Vec::new();
            for a in rhs.split(',') {
                let a = a.trim();
                if !is_name(a) {
                    return Err(bad(format!("bad attribute name {a:?}")));
                }
                attrs.push(Name::new(a));
            }
            if attributes.iter().any(|(l, _)| l.as_str() == lhs) {
                return Err(bad(format!("duplicate attribute list for {lhs}")));
            }
            attributes.push((Name::new(lhs), attrs));
        } else {
            return Err(bad("expected `root ℓ`, `ℓ -> e` or `ℓ @ a, …`".into()));
        }
    }

    let root = match root.or_else(|| productions.first().map(|(l, _)| l.clone())) {
        Some(r) => r,
        None => return Err(ParseDtdError::Empty),
    };
    let mut b = Dtd::builder(root);
    for (l, r) in productions {
        b = b.production(l, r);
    }
    for (l, attrs) in attributes {
        b = b.attrs(l, attrs);
    }
    b.build().map_err(ParseDtdError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1: &str = "
        # D1 from the paper's introduction
        root r
        r    -> prof*
        prof -> teach, supervise
        teach -> year
        year -> course, course
        supervise -> student*
        prof    @ name
        student @ sid
        year    @ y
        course  @ cno
    ";

    #[test]
    fn parses_paper_d1() {
        let d = parse(D1).unwrap();
        assert_eq!(d.root().as_str(), "r");
        assert_eq!(d.arity(&Name::new("course")), 1);
        assert_eq!(d.production(&Name::new("teach")).to_string(), "year");
    }

    #[test]
    fn root_defaults_to_first_lhs() {
        let d = parse("top -> a*\na -> ").unwrap();
        assert_eq!(d.root().as_str(), "top");
        assert_eq!(d.production(&Name::new("a")), &Regex::Epsilon);
    }

    #[test]
    fn display_parse_round_trip() {
        let d = parse(D1).unwrap();
        let d2 = parse(&d.to_string()).unwrap();
        assert_eq!(d.to_string(), d2.to_string());
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            parse("whatever"),
            Err(ParseDtdError::BadLine { line: 1, .. })
        ));
        assert!(parse("r -> (a").is_err());
        assert!(parse("r -> a\nr -> b").is_err());
        assert!(parse("r @ x\nr @ y").is_err());
        assert!(parse("root r\nroot s").is_err());
        assert!(matches!(parse(""), Err(ParseDtdError::Empty)));
        assert!(matches!(
            parse("root r\na -> r"),
            Err(ParseDtdError::Invalid(_))
        ));
    }

    #[test]
    fn comments_and_blank_lines() {
        let d = parse("# header\n\nr -> a* # trailing\n").unwrap();
        assert_eq!(d.root().as_str(), "r");
    }
}
