//! Streaming conformance: `T ⊨ D` in O(depth) memory (DESIGN.md §8.7).
//!
//! [`StreamValidator`] consumes the open/close events of a SAX pass (e.g.
//! [`xmlmap_trees::SaxReader`]) and decides conformance without ever
//! materialising the document: each *open* element owns one subset state of
//! its label's compiled content-model NFA (the [`crate::index::DtdIndex`]
//! dense tables shared with the satisfiability engine), kept on a
//! depth-bounded frame stack whose buffers are pooled across siblings. A
//! violation — wrong root, unknown label, wrong attribute set, or a child
//! word falling out of the production language — rejects immediately, at the
//! first offending byte of the document.
//!
//! Verdicts agree with the arena pipeline `normalize_attrs` +
//! [`crate::Dtd::check`]: attributes are compared as *sets* (documents list
//! them in any order; the DTD's order is canonical), everything else is
//! exact. Error details may differ — the arena checker sweeps the whole
//! document for unknown labels first, while the streaming checker reports
//! the first violation in strict document order.

use crate::index::{get_bit, DtdIndex};
use std::collections::HashMap;
use std::fmt;
use std::io::Read;
use std::sync::Arc;
use xmlmap_trees::{Name, SaxEvent, SaxReader, Value, XmlError};

/// Why a streamed document fails to conform (the positionless analogue of
/// [`crate::ConformanceError`], reported at the first violation in document
/// order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamViolation {
    /// The root label differs from the DTD's root element type.
    WrongRoot {
        /// Label found at the root.
        found: Name,
        /// The DTD's root element type.
        expected: Name,
    },
    /// An element's label is not in the DTD's alphabet.
    UnknownLabel {
        /// The offending label.
        label: Name,
    },
    /// An element's attribute name set differs from `A_D(ℓ)`.
    WrongAttributes {
        /// The element's label.
        label: Name,
        /// Attribute names found, in document order.
        found: Vec<Name>,
        /// Attribute names required by the DTD, in order.
        expected: Vec<Name>,
    },
    /// A child label (or the close of an incomplete child list) drives the
    /// parent's content-model automaton into the empty subset.
    BadChildren {
        /// The parent's label.
        label: Name,
        /// The child label that killed the subset, or `None` when the
        /// element closed with a non-accepting (incomplete) child word.
        child: Option<Name>,
    },
}

impl fmt::Display for StreamViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamViolation::WrongRoot { found, expected } => {
                write!(f, "root is labelled {found}, expected {expected}")
            }
            StreamViolation::UnknownLabel { label } => {
                write!(f, "label {label} is not in the DTD alphabet")
            }
            StreamViolation::WrongAttributes {
                label,
                found,
                expected,
            } => write!(
                f,
                "element {label} has attributes {found:?}, DTD requires {expected:?}"
            ),
            StreamViolation::BadChildren { label, child } => match child {
                Some(c) => write!(
                    f,
                    "child {c} of {label} falls outside the production language"
                ),
                None => write!(f, "{label} closed with an incomplete child list"),
            },
        }
    }
}

impl std::error::Error for StreamViolation {}

/// Everything that can stop a streaming validation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The input is not well-formed XML (with byte/line/column position).
    Parse(XmlError),
    /// The document is well-formed but does not conform, with the byte
    /// offset and 1-based line/column at which the violation surfaced.
    Invalid {
        /// The violation.
        violation: StreamViolation,
        /// Byte offset where it was detected.
        offset: usize,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Parse(e) => write!(f, "{e}"),
            StreamError::Invalid {
                violation,
                offset,
                line,
                col,
            } => write!(
                f,
                "invalid at byte {offset} (line {line}, column {col}): {violation}"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<XmlError> for StreamError {
    fn from(e: XmlError) -> StreamError {
        StreamError::Parse(e)
    }
}

/// Counters from a completed (or rejected) streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Elements opened.
    pub elements: u64,
    /// Deepest open-element nesting.
    pub peak_depth: usize,
    /// High-water mark of live validator state in bytes (frame stack +
    /// subset buffers) — the O(depth) figure the flat-RSS benches assert on.
    pub peak_state_bytes: u64,
}

/// One open element: its interned label and the subset state of its
/// content-model NFA after the children seen so far.
struct Frame {
    lid: u32,
    state: Vec<u64>,
}

/// A push-based streaming conformance checker.
///
/// Feed [`open`](StreamValidator::open)/[`close`](StreamValidator::close)
/// in document order (as yielded by a [`SaxReader`]), then call
/// [`finish`](StreamValidator::finish). The first violation is returned
/// immediately (early reject); the validator must not be fed further events
/// after an error. Memory is O(depth): frames are pooled, so the stack
/// grows to the document's peak depth and is reused across siblings.
pub struct StreamValidator {
    idx: Arc<DtdIndex>,
    label_id: HashMap<Name, u32>,
    /// Frame storage; `stack[..depth]` are live, the rest is the pool.
    stack: Vec<Frame>,
    depth: usize,
    scratch: Vec<u64>,
    stats: StreamStats,
    live_bytes: u64,
}

impl StreamValidator {
    /// Builds a validator over a compiled DTD index. The index is the
    /// compile-once artifact; validators are cheap per-document cursors.
    pub fn new(idx: Arc<DtdIndex>) -> StreamValidator {
        let label_id = idx
            .labels()
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i as u32))
            .collect();
        StreamValidator {
            idx,
            label_id,
            stack: Vec::new(),
            depth: 0,
            scratch: Vec::new(),
            stats: StreamStats::default(),
            live_bytes: 0,
        }
    }

    /// The compiled index this validator runs against.
    pub fn index(&self) -> &Arc<DtdIndex> {
        &self.idx
    }

    /// Counters so far (final after [`finish`](StreamValidator::finish)).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Processes a start tag. Attributes are compared as a name set
    /// against `A_D(label)` (the canonical-order normalisation the arena
    /// pipeline applies before checking).
    pub fn open(&mut self, label: &Name, attrs: &[(Name, Value)]) -> Result<(), StreamViolation> {
        let lid = match self.label_id.get(label) {
            Some(&lid) => lid,
            None => {
                if self.depth == 0 && label != self.idx.dtd().root() {
                    return Err(StreamViolation::WrongRoot {
                        found: label.clone(),
                        expected: self.idx.dtd().root().clone(),
                    });
                }
                return Err(StreamViolation::UnknownLabel {
                    label: label.clone(),
                });
            }
        };
        if self.depth == 0 {
            if lid != self.idx.root() {
                return Err(StreamViolation::WrongRoot {
                    found: label.clone(),
                    expected: self.idx.dtd().root().clone(),
                });
            }
        } else {
            // Step the parent's content-model subset on this child label;
            // an empty subset means no conforming continuation exists.
            let parent = &mut self.stack[self.depth - 1];
            let nfa = &self.idx.nfas()[parent.lid as usize];
            self.scratch.clear();
            self.scratch.resize(nfa.words(), 0);
            let mut alive = false;
            if let Some(edges) = nfa.edges_for(lid) {
                for &(from, to) in edges {
                    if get_bit(&parent.state, from as usize) {
                        self.scratch[to as usize / 64] |= 1 << (to as usize % 64);
                        alive = true;
                    }
                }
            }
            if !alive {
                return Err(StreamViolation::BadChildren {
                    label: self.idx.labels()[parent.lid as usize].clone(),
                    child: Some(label.clone()),
                });
            }
            parent.state.copy_from_slice(&self.scratch);
        }

        let expected = self.idx.dtd().attrs(label);
        let set_ok = attrs.len() == expected.len()
            && expected
                .iter()
                .all(|want| attrs.iter().any(|(a, _)| a == want));
        if !set_ok {
            return Err(StreamViolation::WrongAttributes {
                label: label.clone(),
                found: attrs.iter().map(|(a, _)| a.clone()).collect(),
                expected: expected.to_vec(),
            });
        }

        // Push a frame with the Glushkov initial subset {0}, reusing a
        // pooled buffer when one is available.
        let words = self.idx.nfas()[lid as usize].words();
        if self.depth == self.stack.len() {
            self.stack.push(Frame {
                lid,
                state: Vec::new(),
            });
        }
        let frame = &mut self.stack[self.depth];
        frame.lid = lid;
        frame.state.clear();
        frame.state.resize(words, 0);
        frame.state[0] = 1;
        self.depth += 1;
        self.live_bytes += (words * 8 + std::mem::size_of::<Frame>()) as u64;
        self.stats.elements += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.depth);
        self.stats.peak_state_bytes = self
            .stats
            .peak_state_bytes
            .max(self.live_bytes + self.scratch.capacity() as u64 * 8);
        Ok(())
    }

    /// Processes an end tag: the element's child word must leave its
    /// content-model subset in an accepting state.
    pub fn close(&mut self) -> Result<(), StreamViolation> {
        assert!(self.depth > 0, "close without matching open");
        let frame = &self.stack[self.depth - 1];
        let nfa = &self.idx.nfas()[frame.lid as usize];
        let accepted = frame
            .state
            .iter()
            .zip(nfa.accepting())
            .any(|(s, a)| s & a != 0);
        if !accepted {
            return Err(StreamViolation::BadChildren {
                label: self.idx.labels()[frame.lid as usize].clone(),
                child: None,
            });
        }
        self.live_bytes -= (nfa.words() * 8 + std::mem::size_of::<Frame>()) as u64;
        self.depth -= 1;
        Ok(())
    }

    /// Declares the event stream complete and returns the final counters.
    pub fn finish(self) -> StreamStats {
        assert_eq!(self.depth, 0, "finish with unclosed elements");
        self.stats
    }
}

/// Validates a whole byte stream against `idx` in one SAX pass, rejecting
/// at the first parse error or conformance violation.
pub fn validate_stream<R: Read>(idx: &Arc<DtdIndex>, src: R) -> Result<StreamStats, StreamError> {
    let mut reader = SaxReader::new(src);
    let mut validator = StreamValidator::new(Arc::clone(idx));
    let invalid = |reader: &SaxReader<R>, violation: StreamViolation| {
        let (line, col) = reader.position();
        StreamError::Invalid {
            violation,
            offset: reader.offset(),
            line,
            col,
        }
    };
    while let Some(event) = reader.next_event()? {
        match event {
            SaxEvent::Open { label, attrs } => validator
                .open(&label, &attrs)
                .map_err(|v| invalid(&reader, v))?,
            SaxEvent::Close { .. } => validator.close().map_err(|v| invalid(&reader, v))?,
        }
    }
    Ok(validator.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dtd;

    fn d1() -> Arc<DtdIndex> {
        Arc::new(DtdIndex::new(
            &crate::parse(
                "root r
                 r -> prof*
                 prof -> teach, supervise
                 teach -> year
                 year -> course, course
                 supervise -> student*
                 prof @ name
                 student @ sid
                 year @ y
                 course @ cno",
            )
            .unwrap(),
        ))
    }

    const GOOD: &str = r#"<r>
      <prof name="Ada">
        <teach><year y="2008"><course cno="cs1"/><course cno="cs2"/></year></teach>
        <supervise><student sid="Sue"/></supervise>
      </prof>
    </r>"#;

    #[test]
    fn accepts_the_paper_example() {
        let stats = validate_stream(&d1(), GOOD.as_bytes()).unwrap();
        assert_eq!(stats.elements, 8);
        assert_eq!(stats.peak_depth, 5);
        assert!(stats.peak_state_bytes > 0);
    }

    #[test]
    fn attribute_order_is_normalised() {
        let idx = Arc::new(DtdIndex::new(&crate::parse("r -> \nr @ x, y").unwrap()));
        assert!(validate_stream(&idx, r#"<r y="2" x="1"/>"#.as_bytes()).is_ok());
        assert!(validate_stream(&idx, r#"<r x="1" z="2"/>"#.as_bytes()).is_err());
    }

    #[test]
    fn early_reject_reports_first_violation() {
        // The bad course arity is rejected at </year>, before the parser
        // ever reaches the trailing garbage.
        let doc = r#"<r><prof name="A"><teach><year y="1"><course cno="c"/></year></teach><supervise/></prof></r> junk"#;
        match validate_stream(&d1(), doc.as_bytes()) {
            Err(StreamError::Invalid { violation, .. }) => {
                assert!(
                    matches!(violation, StreamViolation::BadChildren { ref label, child: None } if label.as_str() == "year"),
                    "{violation}"
                );
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn dead_subset_rejects_at_the_open_tag() {
        let doc = r#"<r><prof name="A"><supervise/><teach/></prof></r>"#;
        match validate_stream(&d1(), doc.as_bytes()) {
            Err(StreamError::Invalid { violation, .. }) => {
                assert!(
                    matches!(
                        violation,
                        StreamViolation::BadChildren { ref label, child: Some(ref c) }
                            if label.as_str() == "prof" && c.as_str() == "supervise"
                    ),
                    "{violation}"
                );
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn verdicts_match_the_arena_pipeline() {
        let idx = d1();
        let dtd: &Dtd = idx.dtd();
        for doc in [
            GOOD,
            "<r/>",
            "<x/>",
            r#"<r><prof name="A"><teach/><supervise/></prof></r>"#,
            r#"<r><dean/></r>"#,
            r#"<r><prof><teach><year y="1"><course cno="a"/><course cno="b"/></year></teach><supervise/></prof></r>"#,
        ] {
            let streamed = validate_stream(&idx, doc.as_bytes()).is_ok();
            let arena = {
                let mut t = xmlmap_trees::xml::parse(doc).unwrap();
                dtd.normalize_attrs(&mut t).is_ok() && dtd.check(&t).is_ok()
            };
            assert_eq!(streamed, arena, "verdicts diverge on {doc}");
        }
    }

    #[test]
    fn memory_is_depth_not_size() {
        // A wide document (many siblings) must not grow the state, while a
        // deep one grows it linearly in depth only.
        let idx = Arc::new(DtdIndex::new(&crate::parse("r -> a*\na -> a?").unwrap()));
        let wide = format!("<r>{}</r>", "<a/>".repeat(10_000));
        let deep = format!("{}{}", "<a>".repeat(99), "</a>".repeat(99));
        let wide_stats = validate_stream(&idx, wide.as_bytes()).unwrap();
        let deep_stats = validate_stream(&idx, format!("<r>{deep}</r>").as_bytes()).unwrap();
        assert_eq!(wide_stats.peak_depth, 2);
        assert_eq!(deep_stats.peak_depth, 100);
        assert!(wide_stats.peak_state_bytes < deep_stats.peak_state_bytes);
        assert!(wide_stats.peak_state_bytes < 4096, "{wide_stats:?}");
    }
}
