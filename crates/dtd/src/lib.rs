#![warn(missing_docs)]

//! # xmlmap-dtd
//!
//! DTDs for *XML Schema Mappings* (PODS 2009): productions over regular
//! expressions, ordered attribute lists, conformance checking `T ⊨ D`, and
//! the classifications the paper's tractability results depend on
//! (nested-relational, strictly nested-relational, starred/rigid element
//! types).

pub mod classify;
pub mod conformance;
#[allow(clippy::module_inception)]
pub mod dtd;
pub mod index;
pub mod parse;
pub mod relational;
pub mod stream;

pub use classify::{Mult, NestedRelationalView};
pub use conformance::ConformanceError;
pub use dtd::{Dtd, DtdBuilder, DtdError};
pub use index::{DenseNfa, DtdIndex};
pub use parse::{parse, ParseDtdError};
pub use relational::{instance_to_tree, schema_to_dtd, Relation};
pub use stream::{validate_stream, StreamError, StreamStats, StreamValidator, StreamViolation};
