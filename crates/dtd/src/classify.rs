//! DTD classification: recursion, nested-relational shape, starred element
//! types, and rigidity.
//!
//! The paper's tractability results hinge on *nested-relational* DTDs
//! (productions `ℓ → ℓ̂₁…ℓ̂ₘ` with distinct ℓᵢ and ℓ̂ᵢ ∈ {ℓᵢ, ℓᵢ?, ℓᵢ*, ℓᵢ⁺};
//! non-recursive) and, for composition closure (§8), *strictly*
//! nested-relational DTDs where only **starred** element types (those under
//! a `*` or `+`) carry attributes.
//!
//! For the PTIME absolute-consistency algorithm (Thm 6.3) we also need the
//! *rigidity* analysis described in DESIGN.md §3.4: an element type is
//! **rigid** when the DTD guarantees at most one node with that label in any
//! conforming document — i.e. it occurs in exactly one production, exactly
//! once, its parent chain is unique, and no label on the chain is starred.

use crate::dtd::Dtd;
use std::collections::{BTreeMap, BTreeSet};
use xmlmap_regex::Regex;
use xmlmap_trees::Name;

/// Multiplicity of a child slot in a nested-relational production.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Mult {
    /// Exactly one (`ℓ`).
    One,
    /// Zero or one (`ℓ?`).
    Opt,
    /// Zero or more (`ℓ*`).
    Star,
    /// One or more (`ℓ⁺`).
    Plus,
}

impl Mult {
    /// Can this slot hold two or more occurrences?
    pub fn repeatable(self) -> bool {
        matches!(self, Mult::Star | Mult::Plus)
    }

    /// Can this slot be empty?
    pub fn optional(self) -> bool {
        matches!(self, Mult::Opt | Mult::Star)
    }
}

impl Dtd {
    /// Does the production graph contain a cycle?
    pub fn is_recursive(&self) -> bool {
        // Colours: 0 unvisited, 1 on stack, 2 done.
        fn dfs(d: &Dtd, l: &Name, colour: &mut BTreeMap<Name, u8>) -> bool {
            match colour.get(l) {
                Some(1) => return true,
                Some(2) => return false,
                _ => {}
            }
            colour.insert(l.clone(), 1);
            for s in d.production(l).symbols() {
                if dfs(d, &s, colour) {
                    return true;
                }
            }
            colour.insert(l.clone(), 2);
            false
        }
        let mut colour = BTreeMap::new();
        self.alphabet.iter().any(|l| dfs(self, l, &mut colour))
    }

    /// Element types occurring under the scope of `*` or `+` in some
    /// production ("starred" in the sense of §8).
    pub fn starred_labels(&self) -> BTreeSet<Name> {
        fn walk(r: &Regex, under_star: bool, out: &mut BTreeSet<Name>) {
            match r {
                Regex::Empty | Regex::Epsilon => {}
                Regex::Symbol(n) => {
                    if under_star {
                        out.insert(n.clone());
                    }
                }
                Regex::Concat(a, b) | Regex::Alt(a, b) => {
                    walk(a, under_star, out);
                    walk(b, under_star, out);
                }
                Regex::Star(a) | Regex::Plus(a) => walk(a, true, out),
                Regex::Opt(a) => walk(a, under_star, out),
            }
        }
        let mut out = BTreeSet::new();
        for (_, r) in self.productions() {
            walk(r, false, &mut out);
        }
        out
    }

    /// Returns the nested-relational view if this DTD is nested-relational.
    pub fn nested_relational(&self) -> Option<NestedRelationalView> {
        if self.is_recursive() {
            return None;
        }
        let mut children: BTreeMap<Name, Vec<(Name, Mult)>> = BTreeMap::new();
        for (lhs, body) in self.productions() {
            let items = nr_items(body)?;
            let mut seen = BTreeSet::new();
            for (l, _) in &items {
                if !seen.insert(l.clone()) {
                    return None; // ℓᵢ's must be distinct
                }
            }
            children.insert(lhs.clone(), items);
        }
        // Labels without productions have ε bodies: empty child lists.
        for l in &self.alphabet {
            children.entry(l.clone()).or_default();
        }

        // Occurrence map: for each label, its (parent, mult) occurrences.
        let mut occurs: BTreeMap<Name, Vec<(Name, Mult)>> = BTreeMap::new();
        for (p, items) in &children {
            for (l, m) in items {
                occurs.entry(l.clone()).or_default().push((p.clone(), *m));
            }
        }
        let tree_shaped = self
            .reachable()
            .iter()
            .filter(|l| *l != self.root())
            .all(|l| occurs.get(l).map(|v| v.len()) == Some(1));

        Some(NestedRelationalView {
            root: self.root().clone(),
            children,
            occurs,
            tree_shaped,
        })
    }

    /// Is this DTD nested-relational?
    pub fn is_nested_relational(&self) -> bool {
        self.nested_relational().is_some()
    }

    /// Is this DTD *strictly* nested-relational (nested-relational and only
    /// starred element types have attributes)?
    pub fn is_strictly_nested_relational(&self) -> bool {
        match self.nested_relational() {
            None => false,
            Some(_) => {
                let starred = self.starred_labels();
                self.alphabet
                    .iter()
                    .all(|l| self.arity(l) == 0 || starred.contains(l))
            }
        }
    }
}

/// Decomposes a regex as a nested-relational item list, if it has that shape.
fn nr_items(r: &Regex) -> Option<Vec<(Name, Mult)>> {
    fn item(r: &Regex) -> Option<(Name, Mult)> {
        match r {
            Regex::Symbol(n) => Some((n.clone(), Mult::One)),
            Regex::Opt(inner) => leaf(inner).map(|n| (n, Mult::Opt)),
            Regex::Star(inner) => leaf(inner).map(|n| (n, Mult::Star)),
            Regex::Plus(inner) => leaf(inner).map(|n| (n, Mult::Plus)),
            _ => None,
        }
    }
    fn leaf(r: &Regex) -> Option<Name> {
        match r {
            Regex::Symbol(n) => Some(n.clone()),
            _ => None,
        }
    }
    fn flatten(r: &Regex, out: &mut Vec<(Name, Mult)>) -> Option<()> {
        match r {
            Regex::Epsilon => Some(()),
            Regex::Concat(a, b) => {
                flatten(a, out)?;
                flatten(b, out)
            }
            other => {
                out.push(item(other)?);
                Some(())
            }
        }
    }
    let mut out = Vec::new();
    flatten(r, &mut out)?;
    Some(out)
}

/// Structured view of a nested-relational DTD.
#[derive(Clone, Debug)]
pub struct NestedRelationalView {
    root: Name,
    /// Ordered child slots per element type.
    children: BTreeMap<Name, Vec<(Name, Mult)>>,
    /// For each non-root label, its (parent, mult) occurrences.
    occurs: BTreeMap<Name, Vec<(Name, Mult)>>,
    tree_shaped: bool,
}

impl NestedRelationalView {
    /// The ordered child slots of an element type.
    pub fn slots(&self, label: &Name) -> &[(Name, Mult)] {
        self.children
            .get(label)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Does every non-root reachable label occur in exactly one production,
    /// exactly once? (Then parent chains are unique.)
    pub fn is_tree_shaped(&self) -> bool {
        self.tree_shaped
    }

    /// The unique parent of `label`, when tree-shaped.
    pub fn parent(&self, label: &Name) -> Option<&Name> {
        match self.occurs.get(label) {
            Some(v) if v.len() == 1 => Some(&v[0].0),
            _ => None,
        }
    }

    /// The multiplicity of `label` under its unique parent.
    pub fn mult(&self, label: &Name) -> Option<Mult> {
        match self.occurs.get(label) {
            Some(v) if v.len() == 1 => Some(v[0].1),
            _ => None,
        }
    }

    /// The unique root-to-`label` path (inclusive), when tree-shaped.
    pub fn path(&self, label: &Name) -> Option<Vec<Name>> {
        let mut path = vec![label.clone()];
        let mut cur = label.clone();
        while cur != self.root {
            let p = self.parent(&cur)?.clone();
            path.push(p.clone());
            // Paths in a non-recursive DTD are bounded by the alphabet size.
            if path.len() > self.children.len() + 1 {
                return None;
            }
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Is `label` **rigid**: guaranteed at most one occurrence in any
    /// conforming document? Requires a unique parent chain with no
    /// repeatable multiplicity anywhere on it.
    pub fn is_rigid(&self, label: &Name) -> bool {
        let Some(path) = self.path(label) else {
            return false;
        };
        path.iter()
            .skip(1) // the root itself is always unique
            .all(|l| self.mult(l).is_some_and(|m| !m.repeatable()))
    }

    /// Is `label` guaranteed to occur (at least once) in *every* conforming
    /// document? Requires a unique parent chain whose multiplicities are all
    /// mandatory (`One` or `Plus`).
    pub fn is_guaranteed(&self, label: &Name) -> bool {
        let Some(path) = self.path(label) else {
            return false;
        };
        path.iter()
            .skip(1)
            .all(|l| matches!(self.mult(l), Some(Mult::One | Mult::Plus)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Dtd {
        crate::parse(s).unwrap()
    }

    #[test]
    fn d1_is_not_nested_relational() {
        // `year -> course, course` repeats `course`, so D1 of the paper is
        // NOT nested-relational.
        let d1 = parse(
            "root r
             r -> prof*
             prof -> teach, supervise
             teach -> year
             year -> course, course
             supervise -> student*",
        );
        assert!(!d1.is_nested_relational());
        assert!(!d1.is_recursive());
    }

    #[test]
    fn d2_is_nested_relational() {
        // D2 from the introduction: r -> course*, student*.
        let d2 = parse(
            "root r
             r -> course*, student*
             course -> taughtby
             student -> supervisor
             course @ cno, year
             student @ sid
             taughtby @ teacher
             supervisor @ name",
        );
        let nr = d2.nested_relational().expect("D2 is nested-relational");
        assert!(nr.is_tree_shaped());
        assert_eq!(nr.mult(&Name::new("course")), Some(Mult::Star));
        assert_eq!(nr.mult(&Name::new("taughtby")), Some(Mult::One));
        assert_eq!(
            nr.parent(&Name::new("supervisor")),
            Some(&Name::new("student"))
        );
        assert_eq!(
            nr.path(&Name::new("taughtby")).unwrap(),
            vec![Name::new("r"), Name::new("course"), Name::new("taughtby")]
        );
    }

    #[test]
    fn recursion_detection() {
        let rec = parse("root r\nr -> a\na -> b?\nb -> a*");
        assert!(rec.is_recursive());
        assert!(!rec.is_nested_relational());
        let self_rec = parse("root r\nr -> r0\nr0 -> r0?");
        assert!(self_rec.is_recursive());
    }

    #[test]
    fn disjunction_is_not_nested_relational() {
        let d = parse("root r\nr -> a|b");
        assert!(!d.is_nested_relational());
    }

    #[test]
    fn starred_labels_through_nesting() {
        let d = parse("root r\nr -> (a, b?)*, c+, d?");
        let starred: Vec<String> = d
            .starred_labels()
            .iter()
            .map(|n| n.as_str().to_owned())
            .collect();
        assert_eq!(starred, ["a", "b", "c"]);
    }

    #[test]
    fn strictly_nested_relational() {
        // Attributes only on starred labels: OK.
        let good = parse("root r\nr -> a*, b\na @ x");
        assert!(good.is_strictly_nested_relational());
        // Attribute on the unstarred b: not strict.
        let bad = parse("root r\nr -> a*, b\nb @ x");
        assert!(bad.is_nested_relational());
        assert!(!bad.is_strictly_nested_relational());
    }

    #[test]
    fn rigidity() {
        let d = parse(
            "root r
             r -> a, b*, c?
             a -> d
             b -> e
             c -> f",
        );
        let nr = d.nested_relational().unwrap();
        for (label, rigid) in [
            ("a", true),  // mandatory chain
            ("d", true),  // child of rigid a
            ("b", false), // starred
            ("e", false), // below a starred label
            ("c", true),  // optional but not repeatable
            ("f", true),
            ("r", true),
        ] {
            assert_eq!(nr.is_rigid(&Name::new(label)), rigid, "{label}");
        }
        assert!(nr.is_guaranteed(&Name::new("d")));
        assert!(!nr.is_guaranteed(&Name::new("c"))); // optional
        assert!(!nr.is_guaranteed(&Name::new("f")));
        assert!(!nr.is_guaranteed(&Name::new("b")));
    }

    #[test]
    fn shared_label_is_not_tree_shaped() {
        // c occurs under both a and b.
        let d = parse("root r\nr -> a, b\na -> c?\nb -> c?");
        assert!(
            !d.is_nested_relational() || {
                let nr = d.nested_relational().unwrap();
                !nr.is_tree_shaped()
                    && nr.parent(&Name::new("c")).is_none()
                    && !nr.is_rigid(&Name::new("c"))
            }
        );
    }
}
