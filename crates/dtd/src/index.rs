//! The per-DTD compiled artifact: interned labels and dense production NFAs.
//!
//! [`DtdIndex`] interns the alphabet into dense `u32` ids, compiles every
//! production's Glushkov NFA into a symbol-grouped [`DenseNfa`] whose subset
//! states are flat `[u64]` bitmasks, and records the label dependency graph.
//! It began life inside the `xmlmap-patterns` satisfiability engine; it now
//! lives here, next to the DTD itself, because it is the shared substrate of
//! *every* automaton-shaped consumer: the type-fixpoint engine downstream,
//! and the streaming conformance validator in [`crate::stream`] which runs
//! one `DenseNfa` subset per open element.

use std::collections::{BTreeMap, HashMap};
use xmlmap_codec::{CodecError, Decoder, Encoder};
use xmlmap_regex::Nfa;
use xmlmap_trees::Name;

use crate::dtd::Dtd;

/// Reads bit `i` of a flat `[u64]` bitmask.
#[inline]
pub fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

/// Sets bit `i` of a flat `[u64]` bitmask.
#[inline]
pub fn set_bit(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

/// A production NFA with transitions grouped by (interned) symbol.
///
/// Subset states are `words`-long `[u64]` bitmasks; Glushkov construction
/// guarantees state 0 is the start state and there are no ε-transitions, so
/// `{0}` is the initial subset and stepping is edge-list scatter.
pub struct DenseNfa {
    /// Words in the subset bitmask.
    words: usize,
    /// Accepting-state bitmask.
    accepting: Box<[u64]>,
    /// Sorted label ids having at least one transition, parallel to `edges`.
    syms: Vec<u32>,
    edges: Vec<Vec<(u32, u32)>>,
}

impl DenseNfa {
    pub(crate) fn new(nfa: &Nfa<Name>, label_id: &HashMap<Name, u32>) -> DenseNfa {
        let n = nfa.accepting.len();
        let words = n.div_ceil(64).max(1);
        let mut accepting = vec![0u64; words];
        for (q, &acc) in nfa.accepting.iter().enumerate() {
            if acc {
                set_bit(&mut accepting, q);
            }
        }
        let mut by: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        for (q, trans) in nfa.transitions.iter().enumerate() {
            for (sym, q2) in trans {
                // Symbols outside the alphabet can never label an
                // achievable pair; drop their edges.
                if let Some(&sid) = label_id.get(sym) {
                    by.entry(sid).or_default().push((q as u32, *q2 as u32));
                }
            }
        }
        let (syms, edges) = by.into_iter().unzip();
        DenseNfa {
            words,
            accepting: accepting.into_boxed_slice(),
            syms,
            edges,
        }
    }

    /// Words in a subset bitmask for this automaton.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The accepting-state bitmask (`words` words).
    pub fn accepting(&self) -> &[u64] {
        &self.accepting
    }

    /// Sorted label ids with at least one transition.
    pub fn syms(&self) -> &[u32] {
        &self.syms
    }

    /// The `(from, to)` transition list on `sym`, if any.
    pub fn edges_for(&self, sym: u32) -> Option<&[(u32, u32)]> {
        self.syms
            .binary_search(&sym)
            .ok()
            .map(|i| self.edges[i].as_slice())
    }

    /// Does any transition carry `sym`?
    pub fn has_sym(&self, sym: u32) -> bool {
        self.syms.binary_search(&sym).is_ok()
    }

    fn encode(&self, e: &mut Encoder) {
        e.usize(self.words);
        e.u64s(&self.accepting);
        e.u32s(&self.syms);
        for edges in &self.edges {
            e.usize(edges.len());
            for &(from, to) in edges {
                e.u32(from);
                e.u32(to);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<DenseNfa, CodecError> {
        let words = d.usize()?;
        let accepting = d.u64s()?.into_boxed_slice();
        if accepting.len() != words {
            return Err(CodecError::Malformed("DenseNfa accepting-word count"));
        }
        let syms = d.u32s()?;
        let edges = syms
            .iter()
            .map(|_| {
                let n = d.usize()?;
                (0..n).map(|_| Ok((d.u32()?, d.u32()?))).collect()
            })
            .collect::<Result<Vec<Vec<(u32, u32)>>, CodecError>>()?;
        Ok(DenseNfa {
            words,
            accepting,
            syms,
            edges,
        })
    }

    fn approx_bytes(&self) -> u64 {
        (self.accepting.len() * 8
            + self.syms.capacity() * 4
            + self.edges.iter().map(|e| e.capacity() * 8).sum::<usize>()) as u64
    }
}

/// The per-DTD compiled artifact: interned labels, per-label dense
/// production NFAs, and the label dependency graph. Reusable across
/// pattern sets and engines — callers hold one behind an `Arc`.
pub struct DtdIndex {
    dtd: Dtd,
    labels: Vec<Name>,
    root: u32,
    arities: Vec<usize>,
    nfas: Vec<DenseNfa>,
    /// `dependents[s]` = labels whose production mentions label `s`.
    dependents: Vec<Vec<u32>>,
}

impl DtdIndex {
    /// Compiles `dtd`: interns labels, densifies every production NFA and
    /// builds the label dependency graph.
    pub fn new(dtd: &Dtd) -> DtdIndex {
        let labels: Vec<Name> = dtd.alphabet().cloned().collect();
        let label_id: HashMap<Name, u32> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i as u32))
            .collect();
        let root = label_id[dtd.root()];
        let arities: Vec<usize> = labels.iter().map(|l| dtd.arity(l)).collect();
        let epsilon = Nfa::epsilon();
        let mut nfas = Vec::with_capacity(labels.len());
        let mut dependents = vec![Vec::new(); labels.len()];
        for (lid, l) in labels.iter().enumerate() {
            let dense = DenseNfa::new(dtd.horizontal(l).unwrap_or(&epsilon), &label_id);
            for &s in &dense.syms {
                dependents[s as usize].push(lid as u32);
            }
            nfas.push(dense);
        }
        DtdIndex {
            dtd: dtd.clone(),
            labels,
            root,
            arities,
            nfas,
            dependents,
        }
    }

    /// The compiled DTD.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// Interned labels; `labels()[lid]` is the label with id `lid`.
    pub fn labels(&self) -> &[Name] {
        &self.labels
    }

    /// The interned id of the root element type.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Per-label declared attribute count, indexed by label id.
    pub fn arities(&self) -> &[usize] {
        &self.arities
    }

    /// Per-label dense production NFAs, indexed by label id.
    pub fn nfas(&self) -> &[DenseNfa] {
        &self.nfas
    }

    /// Labels whose production mentions label `s`.
    pub fn dependents(&self, s: u32) -> &[u32] {
        &self.dependents[s as usize]
    }

    /// Serializes the index: the DTD's canonical text (its display form
    /// round-trips through the parser) plus every derived table verbatim,
    /// so deserialization reparses the small schema text but never re-runs
    /// NFA densification or dependency analysis.
    pub fn encode(&self, e: &mut Encoder) {
        e.str(&self.dtd.to_string());
        e.usize(self.labels.len());
        for l in &self.labels {
            e.str(l.as_str());
        }
        e.u32(self.root);
        for &a in &self.arities {
            e.usize(a);
        }
        for nfa in &self.nfas {
            nfa.encode(e);
        }
        for deps in &self.dependents {
            e.u32s(deps);
        }
    }

    /// Inverse of [`DtdIndex::encode`]. Cheap structural sanity checks
    /// only — the artifact store's checksum envelope is what guards
    /// against corruption.
    pub fn decode(d: &mut Decoder<'_>) -> Result<DtdIndex, CodecError> {
        let text = d.str()?;
        let dtd = crate::parse(&text)
            .map_err(|_| CodecError::Malformed("DtdIndex schema text does not parse"))?;
        let n = d.usize()?;
        if n > text.len().max(1) * 2 {
            // A DTD cannot declare more labels than its text has characters.
            return Err(CodecError::Malformed("DtdIndex label count"));
        }
        let labels: Vec<Name> = (0..n)
            .map(|_| Ok(Name::new(d.str()?)))
            .collect::<Result<_, CodecError>>()?;
        let root = d.u32()?;
        if root as usize >= n {
            return Err(CodecError::Malformed("DtdIndex root id"));
        }
        let arities: Vec<usize> = (0..n).map(|_| d.usize()).collect::<Result<_, _>>()?;
        let nfas: Vec<DenseNfa> = (0..n)
            .map(|_| DenseNfa::decode(d))
            .collect::<Result<_, _>>()?;
        if nfas
            .iter()
            .any(|nfa| nfa.syms.iter().any(|&s| s as usize >= n))
        {
            return Err(CodecError::Malformed("DenseNfa symbol out of range"));
        }
        let dependents: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let deps = d.u32s()?;
                if deps.iter().any(|&l| l as usize >= n) {
                    return Err(CodecError::Malformed("DtdIndex dependent out of range"));
                }
                Ok(deps)
            })
            .collect::<Result<_, _>>()?;
        Ok(DtdIndex {
            dtd,
            labels,
            root,
            arities,
            nfas,
            dependents,
        })
    }

    /// Approximate heap footprint in bytes (label strings, arity table,
    /// dense production NFAs, dependency lists).
    pub fn approx_bytes(&self) -> u64 {
        self.labels
            .iter()
            .map(|l| l.as_str().len() as u64 + 16)
            .sum::<u64>()
            + self.arities.capacity() as u64 * 8
            + self.nfas.iter().map(DenseNfa::approx_bytes).sum::<u64>()
            + self
                .dependents
                .iter()
                .map(|v| v.capacity() as u64 * 4)
                .sum::<u64>()
            + self.dtd.to_string().len() as u64
    }
}
