//! DTDs: productions, attribute lists, and compiled validators.
//!
//! A DTD over Γ (paper §2) is a pair of maps: `P_D : Γ → Regex(Γ − {r})`
//! and `A_D : Γ → Att*`. Attributes are *ordered*, following the paper's
//! convention that "attributes come in some order, just like in the
//! relational case", so a node can be written `ℓ(a₁, …, aₙ)`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use xmlmap_regex::{Nfa, Regex};
use xmlmap_trees::Name;

/// A Document Type Definition.
///
/// Construct with [`DtdBuilder`] (or [`crate::parse()`](crate::parse())); the builder compiles
/// every production into a Glushkov NFA so conformance checks don't pay
/// per-call automaton construction.
#[derive(Clone)]
pub struct Dtd {
    pub(crate) root: Name,
    pub(crate) productions: BTreeMap<Name, Regex>,
    pub(crate) attributes: BTreeMap<Name, Vec<Name>>,
    /// Compiled horizontal automata, one per element type.
    pub(crate) compiled: BTreeMap<Name, Arc<Nfa<Name>>>,
    /// All element types: production LHSs plus every symbol they mention.
    pub(crate) alphabet: BTreeSet<Name>,
}

impl Dtd {
    /// Starts building a DTD with the given root element type.
    pub fn builder(root: impl Into<Name>) -> DtdBuilder {
        DtdBuilder {
            root: root.into(),
            productions: BTreeMap::new(),
            attributes: BTreeMap::new(),
        }
    }

    /// The distinguished root element type `r`.
    pub fn root(&self) -> &Name {
        &self.root
    }

    /// The alphabet Γ: every element type mentioned anywhere in the DTD.
    pub fn alphabet(&self) -> impl Iterator<Item = &Name> + '_ {
        self.alphabet.iter()
    }

    /// Is `label` part of the alphabet?
    pub fn contains(&self, label: &Name) -> bool {
        self.alphabet.contains(label)
    }

    /// The production body for `label`; element types without an explicit
    /// production have `ε` (no children allowed).
    pub fn production(&self, label: &Name) -> &Regex {
        static EPSILON: Regex = Regex::Epsilon;
        self.productions.get(label).unwrap_or(&EPSILON)
    }

    /// The compiled horizontal automaton for `label`'s production.
    pub fn horizontal(&self, label: &Name) -> Option<&Nfa<Name>> {
        self.compiled.get(label).map(|a| a.as_ref())
    }

    /// The ordered attribute list `A_D(label)`.
    pub fn attrs(&self, label: &Name) -> &[Name] {
        self.attributes
            .get(label)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of attributes of `label`.
    pub fn arity(&self, label: &Name) -> usize {
        self.attrs(label).len()
    }

    /// Iterates over `(label, production)` pairs (labels without an explicit
    /// production are omitted; their production is ε).
    pub fn productions(&self) -> impl Iterator<Item = (&Name, &Regex)> + '_ {
        self.productions.iter()
    }

    /// The element types reachable from the root through productions.
    pub fn reachable(&self) -> BTreeSet<Name> {
        let mut seen = BTreeSet::from([self.root.clone()]);
        let mut stack = vec![self.root.clone()];
        while let Some(l) = stack.pop() {
            for s in self.production(&l).symbols() {
                if seen.insert(s.clone()) {
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// For each element type, the set of element types whose production
    /// mentions it (its possible parents).
    pub fn parent_map(&self) -> BTreeMap<Name, BTreeSet<Name>> {
        let mut map: BTreeMap<Name, BTreeSet<Name>> = BTreeMap::new();
        for (l, r) in &self.productions {
            for s in r.symbols() {
                map.entry(s).or_default().insert(l.clone());
            }
        }
        map
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "root {}", self.root)?;
        for (l, r) in &self.productions {
            writeln!(f, "{l} -> {r}")?;
        }
        for (l, attrs) in &self.attributes {
            if !attrs.is_empty() {
                write!(f, "{l} @ ")?;
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Errors raised when building a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdError {
    /// A production body mentions the root element type.
    RootInProduction {
        /// The production whose body mentions the root.
        lhs: Name,
    },
    /// Two productions were given for the same element type.
    DuplicateProduction(Name),
    /// An attribute list was given twice for the same element type.
    DuplicateAttributes(Name),
    /// An attribute name is repeated within a single list.
    RepeatedAttribute {
        /// The element type with the bad list.
        label: Name,
        /// The repeated attribute name.
        attr: Name,
    },
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::RootInProduction { lhs } => {
                write!(f, "production for {lhs} mentions the root element type")
            }
            DtdError::DuplicateProduction(l) => write!(f, "duplicate production for {l}"),
            DtdError::DuplicateAttributes(l) => write!(f, "duplicate attribute list for {l}"),
            DtdError::RepeatedAttribute { label, attr } => {
                write!(f, "attribute {attr} repeated on element {label}")
            }
        }
    }
}

impl std::error::Error for DtdError {}

/// Builder for [`Dtd`].
pub struct DtdBuilder {
    root: Name,
    productions: BTreeMap<Name, Regex>,
    attributes: BTreeMap<Name, Vec<Name>>,
}

impl DtdBuilder {
    /// Adds a production `lhs → body`; `body` may be a [`Regex`] or a string
    /// in the DTD-flavoured syntax of `xmlmap-regex`.
    pub fn production(mut self, lhs: impl Into<Name>, body: impl IntoRegex) -> Self {
        self.productions.insert(lhs.into(), body.into_regex());
        self
    }

    /// Declares the ordered attribute list of an element type.
    pub fn attrs<I, N>(mut self, label: impl Into<Name>, attrs: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        self.attributes
            .insert(label.into(), attrs.into_iter().map(Into::into).collect());
        self
    }

    /// Validates and compiles the DTD.
    pub fn build(self) -> Result<Dtd, DtdError> {
        for (lhs, body) in &self.productions {
            if body.symbols().contains(&self.root) {
                return Err(DtdError::RootInProduction { lhs: lhs.clone() });
            }
        }
        for (label, attrs) in &self.attributes {
            let mut seen = BTreeSet::new();
            for a in attrs {
                if !seen.insert(a.clone()) {
                    return Err(DtdError::RepeatedAttribute {
                        label: label.clone(),
                        attr: a.clone(),
                    });
                }
            }
        }
        let mut alphabet: BTreeSet<Name> = BTreeSet::from([self.root.clone()]);
        for (l, r) in &self.productions {
            alphabet.insert(l.clone());
            alphabet.extend(r.symbols());
        }
        alphabet.extend(self.attributes.keys().cloned());
        let compiled = self
            .productions
            .iter()
            .map(|(l, r)| (l.clone(), Arc::new(Nfa::from_regex(r))))
            .collect();
        Ok(Dtd {
            root: self.root,
            productions: self.productions,
            attributes: self.attributes,
            compiled,
            alphabet,
        })
    }
}

/// Accepts either a parsed [`Regex`] or its textual form.
pub trait IntoRegex {
    /// Converts to a [`Regex`], panicking on syntactically invalid text
    /// (builder inputs are programmer-provided literals).
    fn into_regex(self) -> Regex;
}

impl IntoRegex for Regex {
    fn into_regex(self) -> Regex {
        self
    }
}

impl IntoRegex for &str {
    fn into_regex(self) -> Regex {
        xmlmap_regex::parse(self).expect("invalid regex literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DTD `D₁` from the paper's introduction.
    pub(crate) fn d1() -> Dtd {
        Dtd::builder("r")
            .production("r", "prof*")
            .production("prof", "teach, supervise")
            .production("teach", "year")
            .production("year", "course, course")
            .production("supervise", "student*")
            .attrs("prof", ["name"])
            .attrs("student", ["sid"])
            .attrs("year", ["y"])
            .attrs("course", ["cno"])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let d = d1();
        assert_eq!(d.root().as_str(), "r");
        assert_eq!(d.arity(&Name::new("prof")), 1);
        assert_eq!(d.arity(&Name::new("teach")), 0);
        assert_eq!(d.attrs(&Name::new("course")), &[Name::new("cno")]);
        assert_eq!(d.production(&Name::new("student")), &Regex::Epsilon);
        assert!(d.contains(&Name::new("supervise")));
        assert!(!d.contains(&Name::new("missing")));
    }

    #[test]
    fn alphabet_and_reachability() {
        let d = d1();
        let names: Vec<&str> = d.alphabet().map(|n| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "course",
                "prof",
                "r",
                "student",
                "supervise",
                "teach",
                "year"
            ]
        );
        assert_eq!(d.reachable().len(), 7);

        // An unreachable production still belongs to the alphabet.
        let d2 = Dtd::builder("r")
            .production("r", "a")
            .production("orphan", "b")
            .build()
            .unwrap();
        assert!(d2.contains(&Name::new("orphan")));
        assert!(!d2.reachable().contains(&Name::new("orphan")));
    }

    #[test]
    fn parent_map() {
        let d = d1();
        let pm = d.parent_map();
        assert_eq!(
            pm[&Name::new("course")],
            BTreeSet::from([Name::new("year")])
        );
        assert_eq!(pm[&Name::new("prof")], BTreeSet::from([Name::new("r")]));
        assert!(!pm.contains_key(&Name::new("r")));
    }

    #[test]
    fn rejects_root_in_body() {
        let e = Dtd::builder("r").production("a", "r?").build().unwrap_err();
        assert!(matches!(e, DtdError::RootInProduction { .. }));
    }

    #[test]
    fn rejects_repeated_attribute() {
        let e = Dtd::builder("r")
            .attrs("a", ["x", "x"])
            .build()
            .unwrap_err();
        assert!(matches!(e, DtdError::RepeatedAttribute { .. }));
    }

    #[test]
    fn display_lists_everything() {
        let d = d1();
        let s = d.to_string();
        assert!(s.contains("root r"));
        assert!(s.contains("prof -> teach, supervise"));
        assert!(s.contains("course @ cno"));
    }

    #[test]
    fn compiled_automata_match_productions() {
        let d = d1();
        let nfa = d.horizontal(&Name::new("year")).unwrap();
        assert!(nfa.accepts(&[Name::new("course"), Name::new("course")]));
        assert!(!nfa.accepts(&[Name::new("course")]));
    }
}
