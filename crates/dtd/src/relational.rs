//! Encoding relational schemas as DTDs (paper §3).
//!
//! A relational schema `{S₁(A,B), S₂(C,D)}` becomes the DTD
//! `r → s₁, s₂; s₁ → t₁*; s₂ → t₂*` where `t₁` carries attributes `A, B`
//! and `t₂` carries `C, D`. This is how the paper shows XML schema mappings
//! generalise relational schema mappings, and it gives us relational
//! workloads for benches.

use crate::dtd::{Dtd, DtdError};
use xmlmap_regex::Regex;
use xmlmap_trees::{Name, Tree, Value};

/// A relation name with its ordered attribute list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    /// Relation name, e.g. `S1`.
    pub name: Name,
    /// Ordered attribute names.
    pub attrs: Vec<Name>,
}

impl Relation {
    /// Builds a relation descriptor.
    pub fn new<N, I>(name: impl Into<Name>, attrs: I) -> Self
    where
        N: Into<Name>,
        I: IntoIterator<Item = N>,
    {
        Relation {
            name: name.into(),
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// The label of the container element (`s_i`): the lower-cased name.
    pub fn container_label(&self) -> Name {
        Name::new(self.name.as_str().to_lowercase())
    }

    /// The label of tuple elements (`t_i`): `tuple_` + lower-cased name.
    pub fn tuple_label(&self) -> Name {
        Name::new(format!("tuple_{}", self.name.as_str().to_lowercase()))
    }
}

/// Encodes a relational schema as a DTD per §3 of the paper.
///
/// The resulting DTD is always *strictly* nested-relational: tuple elements
/// are starred, containers and the root carry no attributes.
pub fn schema_to_dtd(relations: &[Relation]) -> Result<Dtd, DtdError> {
    let mut b = Dtd::builder("r").production(
        "r",
        Regex::concat(
            relations
                .iter()
                .map(|rel| Regex::Symbol(rel.container_label())),
        ),
    );
    for rel in relations {
        b = b
            .production(
                rel.container_label(),
                Regex::Symbol(rel.tuple_label()).star(),
            )
            .attrs(rel.tuple_label(), rel.attrs.clone());
    }
    b.build()
}

/// A relational instance: per relation, a list of tuples.
pub type Instance<'a> = &'a [(Relation, Vec<Vec<Value>>)];

/// Encodes a relational instance as a document conforming to
/// [`schema_to_dtd`] of its schema.
pub fn instance_to_tree(instance: Instance<'_>) -> Tree {
    let mut t = Tree::new("r");
    for (rel, tuples) in instance {
        let container = t.add_elem(Tree::ROOT, rel.container_label());
        for tuple in tuples {
            debug_assert_eq!(tuple.len(), rel.attrs.len());
            t.add_child(
                container,
                rel.tuple_label(),
                rel.attrs.iter().cloned().zip(tuple.iter().cloned()),
            );
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s1s2() -> Vec<Relation> {
        vec![
            Relation::new("S1", ["A", "B"]),
            Relation::new("S2", ["C", "D"]),
        ]
    }

    #[test]
    fn paper_example_schema() {
        let d = schema_to_dtd(&s1s2()).unwrap();
        assert_eq!(d.production(&Name::new("r")).to_string(), "s1, s2");
        assert_eq!(d.production(&Name::new("s1")).to_string(), "tuple_s1*");
        assert_eq!(d.arity(&Name::new("tuple_s2")), 2);
        assert!(d.is_strictly_nested_relational());
    }

    #[test]
    fn instance_conforms() {
        let rels = s1s2();
        let inst = vec![
            (
                rels[0].clone(),
                vec![
                    vec![Value::str("a"), Value::str("b")],
                    vec![Value::str("a2"), Value::str("b2")],
                ],
            ),
            (
                rels[1].clone(),
                vec![vec![Value::str("c"), Value::str("d")]],
            ),
        ];
        let t = instance_to_tree(&inst);
        let d = schema_to_dtd(&rels).unwrap();
        assert_eq!(d.check(&t), Ok(()));
        assert_eq!(t.size(), 6);
    }

    #[test]
    fn empty_instance_conforms() {
        let rels = s1s2();
        let inst = vec![(rels[0].clone(), vec![]), (rels[1].clone(), vec![])];
        let t = instance_to_tree(&inst);
        assert!(schema_to_dtd(&rels).unwrap().conforms(&t));
    }

    #[test]
    fn empty_schema() {
        let d = schema_to_dtd(&[]).unwrap();
        assert!(d.conforms(&Tree::new("r")));
    }
}
