//! Conformance checking: `T ⊨ D` (paper §2).
//!
//! A tree conforms to a DTD iff its root carries the distinguished root
//! label, every node labelled ℓ has exactly the attributes `A_D(ℓ)` (in
//! order), and the left-to-right labels of its children spell a word in
//! `L(P_D(ℓ))`.

use crate::dtd::Dtd;
use std::fmt;
use xmlmap_trees::{Name, NodeId, Tree};

/// Why a tree fails to conform to a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceError {
    /// The root label differs from the DTD's root element type.
    WrongRoot {
        /// Label found at the root.
        found: Name,
        /// The DTD's root element type.
        expected: Name,
    },
    /// A node's label is not in the DTD's alphabet.
    UnknownLabel {
        /// The offending node.
        node: NodeId,
        /// Its label.
        label: Name,
    },
    /// A node's attribute names differ from `A_D(ℓ)`.
    WrongAttributes {
        /// The offending node.
        node: NodeId,
        /// Its label.
        label: Name,
        /// Attribute names found, in document order.
        found: Vec<Name>,
        /// Attribute names required by the DTD, in order.
        expected: Vec<Name>,
    },
    /// A node's children do not spell a word in the production's language.
    BadChildren {
        /// The offending node.
        node: NodeId,
        /// Its label.
        label: Name,
        /// The children labels found.
        found: Vec<Name>,
    },
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::WrongRoot { found, expected } => {
                write!(f, "root is labelled {found}, expected {expected}")
            }
            ConformanceError::UnknownLabel { node, label } => {
                write!(f, "node {node:?} has label {label} not in the DTD alphabet")
            }
            ConformanceError::WrongAttributes {
                node,
                label,
                found,
                expected,
            } => write!(
                f,
                "node {node:?} ({label}) has attributes {found:?}, DTD requires {expected:?}"
            ),
            ConformanceError::BadChildren { node, label, found } => write!(
                f,
                "children of node {node:?} ({label}) spell {found:?}, not in the production language"
            ),
        }
    }
}

impl std::error::Error for ConformanceError {}

impl Dtd {
    /// Checks `tree ⊨ self`, reporting the first violation found
    /// (document order).
    pub fn check(&self, tree: &Tree) -> Result<(), ConformanceError> {
        if tree.label(Tree::ROOT) != self.root() {
            return Err(ConformanceError::WrongRoot {
                found: tree.label(Tree::ROOT).clone(),
                expected: self.root().clone(),
            });
        }
        // Unknown labels are reported first: a child with a foreign label
        // would otherwise surface as a confusing BadChildren on its parent.
        for node in tree.nodes() {
            let label = tree.label(node);
            if !self.contains(label) {
                return Err(ConformanceError::UnknownLabel {
                    node,
                    label: label.clone(),
                });
            }
        }
        for node in tree.nodes() {
            let label = tree.label(node);
            let expected = self.attrs(label);
            let found: Vec<&Name> = tree.attrs(node).iter().map(|(a, _)| a).collect();
            if found.len() != expected.len() || found.iter().zip(expected).any(|(a, b)| *a != b) {
                return Err(ConformanceError::WrongAttributes {
                    node,
                    label: label.clone(),
                    found: found.into_iter().cloned().collect(),
                    expected: expected.to_vec(),
                });
            }
            let word: Vec<Name> = tree
                .children(node)
                .iter()
                .map(|&c| tree.label(c).clone())
                .collect();
            let ok = match self.horizontal(label) {
                Some(nfa) => nfa.accepts(&word),
                None => word.is_empty(), // implicit ε production
            };
            if !ok {
                return Err(ConformanceError::BadChildren {
                    node,
                    label: label.clone(),
                    found: word,
                });
            }
        }
        Ok(())
    }

    /// Convenience Boolean form of [`Dtd::check`].
    pub fn conforms(&self, tree: &Tree) -> bool {
        self.check(tree).is_ok()
    }

    /// Reorders every node's attributes into `A_D(ℓ)` order (documents
    /// parsed from XML may list attributes in any order; conformance and
    /// pattern semantics use the canonical order). Fails with
    /// [`ConformanceError::WrongAttributes`] if a node's attribute *set*
    /// differs from the DTD's.
    pub fn normalize_attrs(&self, tree: &mut Tree) -> Result<(), ConformanceError> {
        let nodes: Vec<NodeId> = tree.nodes().collect();
        for node in nodes {
            let label = tree.label(node).clone();
            if !self.contains(&label) {
                return Err(ConformanceError::UnknownLabel { node, label });
            }
            let expected = self.attrs(&label);
            let current = tree.attrs(node).to_vec();
            if current.len() != expected.len() {
                return Err(ConformanceError::WrongAttributes {
                    node,
                    label,
                    found: current.into_iter().map(|(a, _)| a).collect(),
                    expected: expected.to_vec(),
                });
            }
            let mut reordered = Vec::with_capacity(expected.len());
            for want in expected {
                match current.iter().find(|(a, _)| a == want) {
                    Some((a, v)) => reordered.push((a.clone(), v.clone())),
                    None => {
                        return Err(ConformanceError::WrongAttributes {
                            node,
                            label,
                            found: current.into_iter().map(|(a, _)| a).collect(),
                            expected: expected.to_vec(),
                        })
                    }
                }
            }
            tree.set_attrs(node, reordered);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlmap_trees::tree;

    fn d1() -> Dtd {
        crate::parse(
            "root r
             r -> prof*
             prof -> teach, supervise
             teach -> year
             year -> course, course
             supervise -> student*
             prof @ name
             student @ sid
             year @ y
             course @ cno",
        )
        .unwrap()
    }

    fn good_tree() -> Tree {
        tree! {
            "r" [
                "prof"("name" = "Ada") [
                    "teach" [ "year"("y" = "2008") [
                        "course"("cno" = "cs1"),
                        "course"("cno" = "cs2"),
                    ] ],
                    "supervise" [ "student"("sid" = "Sue") ],
                ],
            ]
        }
    }

    #[test]
    fn paper_example_conforms() {
        assert_eq!(d1().check(&good_tree()), Ok(()));
        // An empty professor list is allowed by prof*.
        assert!(d1().conforms(&tree!("r")));
    }

    #[test]
    fn wrong_root() {
        let e = d1().check(&tree!("prof"("name" = "Ada"))).unwrap_err();
        assert!(matches!(e, ConformanceError::WrongRoot { .. }));
    }

    #[test]
    fn unknown_label() {
        let t = tree!("r"["dean"]);
        let e = d1().check(&t).unwrap_err();
        assert!(matches!(e, ConformanceError::UnknownLabel { .. }));
    }

    #[test]
    fn missing_attribute() {
        let t = tree!("r" [ "prof" [
            "teach" [ "year"("y" = "2008") [
                "course"("cno" = "a"), "course"("cno" = "b") ] ],
            "supervise",
        ] ]);
        let e = d1().check(&t).unwrap_err();
        assert!(
            matches!(e, ConformanceError::WrongAttributes { ref label, .. } if label.as_str() == "prof"),
            "{e}"
        );
    }

    #[test]
    fn attribute_order_matters() {
        let d = crate::parse("r -> \nr @ x, y").unwrap();
        assert!(d.conforms(&tree!("r"("x" = "1", "y" = "2"))));
        assert!(!d.conforms(&tree!("r"("y" = "2", "x" = "1"))));
    }

    #[test]
    fn bad_children_word() {
        // year must have exactly two courses.
        let t = tree!("r" [ "prof"("name" = "Ada") [
            "teach" [ "year"("y" = "2008") [ "course"("cno" = "a") ] ],
            "supervise",
        ] ]);
        let e = d1().check(&t).unwrap_err();
        assert!(
            matches!(e, ConformanceError::BadChildren { ref label, .. } if label.as_str() == "year"),
            "{e}"
        );
    }

    #[test]
    fn leaf_elements_must_be_leaves() {
        let d = crate::parse("r -> a\na -> ").unwrap();
        assert!(d.conforms(&tree!("r"["a"])));
        assert!(!d.conforms(&tree!("r"["a"["a"]])));
    }

    #[test]
    fn normalize_reorders_attributes() {
        let d = crate::parse("r -> \nr @ x, y").unwrap();
        let mut t = tree!("r"("y" = "2", "x" = "1"));
        assert!(!d.conforms(&t));
        d.normalize_attrs(&mut t).unwrap();
        assert!(d.conforms(&t));
        let names: Vec<&str> = t
            .attrs(Tree::ROOT)
            .iter()
            .map(|(a, _)| a.as_str())
            .collect();
        assert_eq!(names, ["x", "y"]);

        // Wrong attribute set still errors.
        let mut wrong = tree!("r"("x" = "1", "z" = "2"));
        assert!(d.normalize_attrs(&mut wrong).is_err());
        let mut missing = tree!("r"("x" = "1"));
        assert!(d.normalize_attrs(&mut missing).is_err());
        let mut unknown = tree!("q");
        assert!(d.normalize_attrs(&mut unknown).is_err());
    }

    #[test]
    fn error_messages_render() {
        let e = d1().check(&tree!("x")).unwrap_err();
        assert!(e.to_string().contains("expected r"));
    }
}
