#![warn(missing_docs)]

//! # xmlmap-trees
//!
//! Unranked ordered data trees — the document model of *XML Schema Mappings*
//! (Amano, Libkin, Murlak; PODS 2009), §2:
//!
//! > `T = ⟨U, ↓, →, lab, (ρ_a)_{a∈Att}⟩`
//!
//! where `U` is an unranked tree domain, `↓`/`→` are child and next-sibling,
//! `lab` labels nodes with element types, and each `ρ_a` assigns attribute
//! values.
//!
//! The crate provides:
//! * [`Tree`]/[`NodeId`] — an arena-based document with all four navigation
//!   axes used by the mapping language (`↓`, `↓*`, `→`, `→*`);
//! * [`Name`] — interned element-type/attribute names;
//! * [`Value`] — data values (constants and labelled nulls for the chase);
//! * [`xml`] — a reader/writer for the element+attribute XML fragment;
//! * [`sax`] — a pull-based event reader over the same fragment for
//!   streaming consumers (O(depth) memory, no arena);
//! * [`tree!`] — a literal syntax for documents in tests and examples.

pub mod name;
pub mod sax;
pub mod tree;
pub mod value;
pub mod xml;

pub use name::{name, Name};
pub use sax::{SaxEvent, SaxReader};
pub use tree::{isomorphic_mod_nulls, NodeId, Tree};
pub use value::{NullFactory, Value};
pub use xml::XmlError;

/// Builds a [`Tree`] literal.
///
/// Syntax: `label ( attr = value, ... ) [ child, ... ]`, where the attribute
/// list and the child list are each optional.
///
/// ```
/// use xmlmap_trees::{tree, Value};
/// let t = tree! {
///     "r" [
///         "prof"("name" = "Ada") [
///             "teach" [ "year"("y" = "2008") [
///                 "course"("cno" = "cs1"),
///                 "course"("cno" = "cs2"),
///             ] ],
///             "supervise" [ "student"("sid" = "Sue") ],
///         ],
///     ]
/// };
/// assert_eq!(t.size(), 8);
/// assert_eq!(t.attr(t.children(xmlmap_trees::Tree::ROOT)[0], "name"),
///            Some(&Value::str("Ada")));
/// ```
#[macro_export]
macro_rules! tree {
    // Entry points.
    ($label:literal) => {{
        $crate::Tree::new($label)
    }};
    ($label:literal ( $($a:literal = $v:expr),* $(,)? )) => {{
        $crate::Tree::with_root_attrs($label, [$(($a, $crate::Value::from($v))),*])
    }};
    ($label:literal [ $($rest:tt)* ]) => {{
        let mut t = $crate::Tree::new($label);
        $crate::tree!(@children t, $crate::Tree::ROOT, $($rest)*);
        t
    }};
    ($label:literal ( $($a:literal = $v:expr),* $(,)? ) [ $($rest:tt)* ]) => {{
        let mut t = $crate::Tree::with_root_attrs($label, [$(($a, $crate::Value::from($v))),*]);
        $crate::tree!(@children t, $crate::Tree::ROOT, $($rest)*);
        t
    }};

    // Child list walker. Each step peels one child (4 shapes), then recurses.
    (@children $t:ident, $p:expr, ) => {};
    (@children $t:ident, $p:expr, $label:literal $(, $($rest:tt)*)?) => {
        let _ = $t.add_elem($p, $label);
        $crate::tree!(@children $t, $p, $($($rest)*)?);
    };
    (@children $t:ident, $p:expr, $label:literal ( $($a:literal = $v:expr),* $(,)? ) $(, $($rest:tt)*)?) => {
        let _ = $t.add_child($p, $label, [$(($a, $crate::Value::from($v))),*]);
        $crate::tree!(@children $t, $p, $($($rest)*)?);
    };
    (@children $t:ident, $p:expr, $label:literal [ $($kids:tt)* ] $(, $($rest:tt)*)?) => {
        let __id = $t.add_elem($p, $label);
        $crate::tree!(@children $t, __id, $($kids)*);
        $crate::tree!(@children $t, $p, $($($rest)*)?);
    };
    (@children $t:ident, $p:expr, $label:literal ( $($a:literal = $v:expr),* $(,)? ) [ $($kids:tt)* ] $(, $($rest:tt)*)?) => {
        let __id = $t.add_child($p, $label, [$(($a, $crate::Value::from($v))),*]);
        $crate::tree!(@children $t, __id, $($kids)*);
        $crate::tree!(@children $t, $p, $($($rest)*)?);
    };
}

#[cfg(test)]
mod proptests {
    use crate::{Name, Tree, Value};
    use proptest::prelude::*;

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s)
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            // Printable strings including XML-special characters.
            "[ -~]{0,8}".prop_map(Value::str),
            any::<i64>().prop_map(Value::int),
        ]
    }

    prop_compose! {
        fn arb_attrs()(pairs in proptest::collection::btree_map(arb_name(), arb_value(), 0..3))
            -> Vec<(Name, Value)>
        {
            pairs.into_iter().map(|(k, v)| (Name::new(k), v)).collect()
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        // Build a random tree from a recursive (label, attrs, children) spec.
        #[derive(Debug, Clone)]
        struct Spec {
            label: String,
            attrs: Vec<(Name, Value)>,
            children: Vec<Spec>,
        }
        let leaf = (arb_name(), arb_attrs()).prop_map(|(label, attrs)| Spec {
            label,
            attrs,
            children: vec![],
        });
        let spec = leaf.prop_recursive(3, 16, 4, |inner| {
            (
                arb_name(),
                arb_attrs(),
                proptest::collection::vec(inner, 0..4),
            )
                .prop_map(|(label, attrs, children)| Spec {
                    label,
                    attrs,
                    children,
                })
        });
        fn build(tree: &mut Tree, at: crate::NodeId, spec: &Spec) {
            for c in &spec.children {
                let id = tree.add_child(at, c.label.as_str(), c.attrs.iter().cloned());
                build(tree, id, c);
            }
        }
        spec.prop_map(|s| {
            let mut t = Tree::with_root_attrs(s.label.as_str(), s.attrs.iter().cloned());
            build(&mut t, Tree::ROOT, &s);
            t
        })
    }

    proptest! {
        /// Serialising and re-parsing any tree yields the same tree
        /// (integer values come back as strings with equal rendering, so
        /// compare via a second round-trip).
        #[test]
        fn xml_round_trip(t in arb_tree()) {
            let once = crate::xml::parse(&crate::xml::to_string(&t)).unwrap();
            let twice = crate::xml::parse(&crate::xml::to_string(&once)).unwrap();
            prop_assert_eq!(once, twice);
        }

        /// Document-order traversal visits every node exactly once, parents
        /// before children, siblings left to right.
        #[test]
        fn traversal_is_document_order(t in arb_tree()) {
            let order: Vec<_> = t.nodes().collect();
            prop_assert_eq!(order.len(), t.size());
            let position: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
            for n in &order {
                if let Some(p) = t.parent(*n) {
                    prop_assert!(position[&p] < position[n]);
                }
                if let Some(next) = t.next_sibling(*n) {
                    prop_assert!(position[n] < position[&next]);
                }
            }
        }

        /// Subtree extraction and grafting are mutually inverse.
        #[test]
        fn subtree_graft_inverse(t in arb_tree()) {
            for n in t.nodes().take(4) {
                let sub = t.subtree(n);
                let mut host = Tree::new("host");
                let copied = host.graft(Tree::ROOT, &sub);
                prop_assert_eq!(host.subtree(copied), sub);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Tree, Value};

    #[test]
    fn tree_macro_shapes() {
        let plain = tree!("r");
        assert_eq!(plain.size(), 1);

        let attrs_only = tree!("a"("x" = "1", "y" = 2));
        assert_eq!(attrs_only.attr(Tree::ROOT, "y"), Some(&Value::int(2)));

        let nested = tree! {
            "r" [
                "a"("v" = "1"),
                "b" [ "c", "d"("w" = "2") ],
                "e",
            ]
        };
        assert_eq!(nested.size(), 6);
        let b = nested.children(Tree::ROOT)[1];
        assert_eq!(nested.label(b).as_str(), "b");
        assert_eq!(nested.children(b).len(), 2);
    }

    #[test]
    fn tree_macro_matches_builder() {
        let via_macro = tree!("r"["a"("v" = "1")["b"]]);
        let mut via_builder = Tree::new("r");
        let a = via_builder.add_child(Tree::ROOT, "a", [("v", Value::str("1"))]);
        via_builder.add_elem(a, "b");
        assert_eq!(via_macro, via_builder);
    }
}
