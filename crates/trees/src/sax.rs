//! A pull-based (SAX-style) reader for the element+attribute XML fragment.
//!
//! [`SaxReader`] yields [`SaxEvent::Open`]/[`SaxEvent::Close`] events from
//! any [`std::io::Read`] source without ever materialising a [`crate::Tree`]:
//! the reader keeps a bounded rolling byte buffer plus one interned label per
//! *open* element, so memory is O(depth + chunk), not O(document). This is
//! the entry point for streaming DTD conformance (`xmlmap-dtd`) and streaming
//! pattern evaluation (`xmlmap-patterns`) over documents that don't fit the
//! arena.
//!
//! The dialect is exactly the one of [`crate::xml`] — in fact
//! [`crate::xml::parse`] is now a thin arena builder driven by this reader,
//! so entity handling, attribute parsing, and diagnostics are shared, not
//! duplicated. In particular: elements and attributes only (text content is
//! rejected — the fragment has no text events), the five predefined entities,
//! comments and processing instructions skipped, duplicate attributes
//! rejected, and a single root element.

use crate::name::Name;
use crate::value::Value;
use crate::xml::XmlError;
use std::io::Read;

/// Size of one refill of the rolling input buffer.
const CHUNK: usize = 64 * 1024;

/// Longest fixed token the reader ever looks ahead for (`<!--`).
const MAX_LOOKAHEAD: usize = 4;

/// One parsing event.
///
/// A self-closing tag `<a/>` yields an `Open` immediately followed by a
/// `Close`, so consumers see a uniform open/close discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaxEvent {
    /// A start tag: `<label a="1" b="2">` (or the front half of `<label/>`).
    Open {
        /// The element type.
        label: Name,
        /// Attributes in document order.
        attrs: Vec<(Name, Value)>,
    },
    /// An end tag: `</label>` (or the back half of `<label/>`).
    Close {
        /// The element type of the matching start tag.
        label: Name,
    },
}

/// A pull parser over any byte source.
///
/// Call [`SaxReader::next_event`] until it returns `Ok(None)` (clean end of
/// document) or an error. Events are well-nested by construction: the reader
/// itself rejects mismatched or missing close tags, text content, and
/// trailing content after the root element, with the same messages as
/// [`crate::xml::parse`].
pub struct SaxReader<R: Read> {
    src: R,
    buf: Vec<u8>,
    /// Index of the next unconsumed byte in `buf`.
    pos: usize,
    /// Bytes discarded before `buf[0]` (for absolute offsets).
    consumed: usize,
    eof: bool,
    line: u32,
    col: u32,
    /// Labels of currently open elements; `len()` is the depth.
    stack: Vec<Name>,
    /// A self-closing tag was opened; the next event closes `stack.last()`.
    pending_close: bool,
    /// The single root element has been closed.
    root_closed: bool,
    /// High-water mark of `stack.len()`.
    peak_depth: usize,
}

impl<R: Read> SaxReader<R> {
    /// Wraps a byte source. Reading starts at offset 0, line 1, column 1.
    pub fn new(src: R) -> Self {
        SaxReader {
            src,
            buf: Vec::new(),
            pos: 0,
            consumed: 0,
            eof: false,
            line: 1,
            col: 1,
            stack: Vec::new(),
            pending_close: false,
            root_closed: false,
            peak_depth: 0,
        }
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Deepest nesting seen so far.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Absolute byte offset of the next unconsumed byte.
    pub fn offset(&self) -> usize {
        self.consumed + self.pos
    }

    /// Current 1-based line and column.
    pub fn position(&self) -> (u32, u32) {
        (self.line, self.col)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            offset: self.offset(),
            line: self.line,
            col: self.col,
            message: message.into(),
        })
    }

    /// Makes at least `n` bytes (n ≤ MAX_LOOKAHEAD) available at `pos`,
    /// unless the source is exhausted. Consumed bytes are compacted away, so
    /// the buffer never outgrows one chunk plus the lookahead window.
    fn ensure(&mut self, n: usize) -> Result<(), XmlError> {
        debug_assert!(n <= MAX_LOOKAHEAD);
        while !self.eof && self.buf.len() - self.pos < n {
            if self.pos > 0 {
                self.buf.drain(..self.pos);
                self.consumed += self.pos;
                self.pos = 0;
            }
            let old_len = self.buf.len();
            self.buf.resize(old_len + CHUNK, 0);
            match self.src.read(&mut self.buf[old_len..]) {
                Ok(0) => {
                    self.buf.truncate(old_len);
                    self.eof = true;
                }
                Ok(k) => self.buf.truncate(old_len + k),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.buf.truncate(old_len);
                }
                Err(e) => {
                    self.buf.truncate(old_len);
                    return self.err(format!("I/O error: {e}"));
                }
            }
        }
        Ok(())
    }

    fn peek(&mut self) -> Result<Option<u8>, XmlError> {
        self.ensure(1)?;
        Ok(self.buf.get(self.pos).copied())
    }

    /// Does the unconsumed input start with `prefix`?
    fn starts_with(&mut self, prefix: &[u8]) -> Result<bool, XmlError> {
        self.ensure(prefix.len())?;
        Ok(self.buf[self.pos..].starts_with(prefix))
    }

    fn bump(&mut self) -> Result<Option<u8>, XmlError> {
        let b = self.peek()?;
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        Ok(b)
    }

    fn skip_ws(&mut self) -> Result<(), XmlError> {
        while matches!(self.peek()?, Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump()?;
        }
        Ok(())
    }

    fn eat(&mut self, b: u8) -> Result<(), XmlError> {
        if self.peek()? == Some(b) {
            self.bump()?;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    /// Skips whitespace, comments, and processing instructions.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws()?;
            if self.starts_with(b"<?")? {
                self.bump()?; // '<'; "?>" may overlap the '?' that follows
                loop {
                    if self.starts_with(b"?>")? {
                        self.bump()?;
                        self.bump()?;
                        break;
                    }
                    if self.bump()?.is_none() {
                        return self.err("unterminated processing instruction");
                    }
                }
            } else if self.starts_with(b"<!--")? {
                self.bump()?; // "<!"; "-->" may overlap the "--" that follows
                self.bump()?;
                loop {
                    if self.starts_with(b"-->")? {
                        for _ in 0..3 {
                            self.bump()?;
                        }
                        break;
                    }
                    if self.bump()?.is_none() {
                        return self.err("unterminated comment");
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        while let Some(b) = self.peek()? {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                out.push(b as char);
                self.bump()?;
            } else {
                break;
            }
        }
        if out.is_empty() {
            return self.err("expected a name");
        }
        Ok(out)
    }

    fn quoted_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump()? {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected a quoted attribute value"),
        };
        let mut out = String::new();
        loop {
            match self.bump()? {
                None => return self.err("unterminated attribute value"),
                Some(q) if q == quote => break,
                Some(b'&') => out.push(self.entity()?),
                Some(b) => out.push(b as char),
            }
        }
        Ok(out)
    }

    fn entity(&mut self) -> Result<char, XmlError> {
        let mut name = [0u8; 4];
        let mut len = 0;
        loop {
            match self.peek()? {
                None => return self.err("unterminated entity"),
                Some(b';') => {
                    self.bump()?;
                    return match &name[..len] {
                        b"lt" => Ok('<'),
                        b"gt" => Ok('>'),
                        b"amp" => Ok('&'),
                        b"quot" => Ok('"'),
                        b"apos" => Ok('\''),
                        _ => self.err("unknown entity"),
                    };
                }
                Some(b) => {
                    if len == name.len() {
                        return self.err("unknown entity");
                    }
                    name[len] = b;
                    len += 1;
                    self.bump()?;
                }
            }
        }
    }

    /// Pulls the next event, or `Ok(None)` at the clean end of the document.
    pub fn next_event(&mut self) -> Result<Option<SaxEvent>, XmlError> {
        if self.pending_close {
            self.pending_close = false;
            let label = self.stack.pop().expect("pending close on empty stack");
            if self.stack.is_empty() {
                self.root_closed = true;
            }
            return Ok(Some(SaxEvent::Close { label }));
        }
        self.skip_misc()?;
        match self.peek()? {
            None => {
                if let Some(open) = self.stack.last() {
                    return self.err(format!("missing close tag </{open}>"));
                }
                if self.root_closed {
                    Ok(None)
                } else {
                    self.err("expected '<'")
                }
            }
            Some(b'<') => {
                if self.stack.is_empty() && self.root_closed {
                    return self.err("trailing content after the root element");
                }
                if !self.stack.is_empty() && self.starts_with(b"</")? {
                    self.bump()?;
                    self.bump()?;
                    let close = self.name()?;
                    let label = self.stack.last().expect("non-empty stack").clone();
                    if close != *label.as_str() {
                        return self.err(format!("mismatched close tag: expected </{label}>"));
                    }
                    self.skip_ws()?;
                    self.eat(b'>')?;
                    self.stack.pop();
                    if self.stack.is_empty() {
                        self.root_closed = true;
                    }
                    return Ok(Some(SaxEvent::Close { label }));
                }
                self.bump()?; // '<'
                let label = Name::new(self.name()?);
                let mut attrs: Vec<(Name, Value)> = Vec::new();
                loop {
                    self.skip_ws()?;
                    match self.peek()? {
                        Some(b'/') | Some(b'>') => break,
                        Some(_) => {
                            let attr = self.name()?;
                            self.skip_ws()?;
                            self.eat(b'=')?;
                            self.skip_ws()?;
                            let value = self.quoted_value()?;
                            if attrs.iter().any(|(a, _)| *a.as_str() == attr) {
                                return self.err(format!("duplicate attribute {attr:?}"));
                            }
                            attrs.push((Name::new(attr), Value::from(value)));
                        }
                        None => return self.err("unterminated start tag"),
                    }
                }
                self.stack.push(label.clone());
                self.peak_depth = self.peak_depth.max(self.stack.len());
                if self.peek()? == Some(b'/') {
                    self.bump()?;
                    self.eat(b'>')?;
                    self.pending_close = true;
                } else {
                    self.eat(b'>')?;
                }
                Ok(Some(SaxEvent::Open { label, attrs }))
            }
            Some(_) => {
                if !self.stack.is_empty() {
                    self.err("text content is not supported in this fragment")
                } else if self.root_closed {
                    self.err("trailing content after the root element")
                } else {
                    self.err("expected '<'")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<SaxEvent>, XmlError> {
        let mut r = SaxReader::new(input.as_bytes());
        let mut out = Vec::new();
        while let Some(ev) = r.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }

    fn open(label: &str, attrs: &[(&str, &str)]) -> SaxEvent {
        SaxEvent::Open {
            label: Name::new(label),
            attrs: attrs
                .iter()
                .map(|(a, v)| (Name::new(*a), Value::str(*v)))
                .collect(),
        }
    }

    fn close(label: &str) -> SaxEvent {
        SaxEvent::Close {
            label: Name::new(label),
        }
    }

    #[test]
    fn event_sequence() {
        let evs = events(r#"<r><a x="1"/><b></b></r>"#).unwrap();
        assert_eq!(
            evs,
            vec![
                open("r", &[]),
                open("a", &[("x", "1")]),
                close("a"),
                open("b", &[]),
                close("b"),
                close("r"),
            ]
        );
    }

    #[test]
    fn depth_and_peak_are_tracked() {
        let mut r = SaxReader::new("<r><a><b/></a><c/></r>".as_bytes());
        let mut max_seen = 0;
        while let Some(_ev) = r.next_event().unwrap() {
            max_seen = max_seen.max(r.depth());
        }
        assert_eq!(max_seen, 3);
        assert_eq!(r.peak_depth(), 3);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn line_and_column_in_errors() {
        let e = events("<r>\n  <a>text</a>\n</r>").unwrap_err();
        assert_eq!((e.line, e.col), (2, 6));
        assert!(e.message.contains("text content"));
        assert_eq!(e.offset, 9);
    }

    #[test]
    fn small_chunks_see_identical_events() {
        // A reader that returns one byte at a time exercises every
        // refill/compaction boundary.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let doc = r#"<?xml version="1.0"?><!-- c --><r><a v="x &lt; y"/></r>"#;
        let mut slow = SaxReader::new(OneByte(doc.as_bytes()));
        let mut fast = SaxReader::new(doc.as_bytes());
        loop {
            let (a, b) = (slow.next_event().unwrap(), fast.next_event().unwrap());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for (doc, needle) in [
            ("<a><b></a></a>", "mismatched"),
            ("<a>", "missing close tag"),
            ("<a/><b/>", "trailing content"),
            ("<a/>junk", "trailing content"),
            (r#"<a x="1" x="2"/>"#, "duplicate attribute"),
            ("", "expected '<'"),
            (r#"<a v="&nope;"/>"#, "unknown entity"),
        ] {
            let e = events(doc).unwrap_err();
            assert!(e.message.contains(needle), "{doc}: {e}");
        }
    }
}
