//! Unranked ordered data trees.
//!
//! An XML document is modelled exactly as in the paper (§2):
//! `T = ⟨U, ↓, →, lab, (ρ_a)⟩` — an unranked tree domain with child and
//! next-sibling relations, a labelling function, and per-node attribute
//! values. Nodes live in an arena owned by the [`Tree`]; a [`NodeId`] is a
//! cheap index into it.

use crate::name::Name;
use crate::value::Value;
use std::fmt;

/// Index of a node within its owning [`Tree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node of every tree.
    pub const ROOT: NodeId = NodeId(0);

    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct NodeData {
    pub(crate) label: Name,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    /// Attribute name/value pairs, in canonical (DTD) order.
    pub(crate) attrs: Vec<(Name, Value)>,
}

/// An unranked ordered tree with attribute values — an XML document.
///
/// The root always exists and is node [`NodeId::ROOT`]. Nodes are appended
/// with [`Tree::add_child`]; the arena never removes nodes (documents in
/// schema-mapping problems are immutable once constructed, and this keeps
/// `NodeId`s stable).
///
/// ```
/// use xmlmap_trees::{Tree, Value};
/// let mut t = Tree::new("r");
/// let p = t.add_child(Tree::ROOT, "prof", [("name", Value::str("Ada"))]);
/// let c = t.add_child(p, "course", [("cno", Value::str("cs101"))]);
/// assert_eq!(t.label(c).as_str(), "course");
/// assert_eq!(t.parent(c), Some(p));
/// assert_eq!(t.size(), 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Tree {
    nodes: Vec<NodeData>,
}

impl Tree {
    /// Alias for [`NodeId::ROOT`], for readability at call sites.
    pub const ROOT: NodeId = NodeId::ROOT;

    /// Creates a tree consisting of a single root node with no attributes.
    pub fn new(root_label: impl Into<Name>) -> Self {
        Tree {
            nodes: vec![NodeData {
                label: root_label.into(),
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
            }],
        }
    }

    /// Creates a tree whose root carries the given attributes.
    pub fn with_root_attrs<N, V, I>(root_label: impl Into<Name>, attrs: I) -> Self
    where
        N: Into<Name>,
        V: Into<Value>,
        I: IntoIterator<Item = (N, V)>,
    {
        let mut t = Tree::new(root_label);
        t.nodes[0].attrs = attrs
            .into_iter()
            .map(|(n, v)| (n.into(), v.into()))
            .collect();
        t
    }

    /// Appends a new last child under `parent` and returns its id.
    pub fn add_child<N, V, I>(&mut self, parent: NodeId, label: impl Into<Name>, attrs: I) -> NodeId
    where
        N: Into<Name>,
        V: Into<Value>,
        I: IntoIterator<Item = (N, V)>,
    {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            attrs: attrs
                .into_iter()
                .map(|(n, v)| (n.into(), v.into()))
                .collect(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends a child with no attributes.
    pub fn add_elem(&mut self, parent: NodeId, label: impl Into<Name>) -> NodeId {
        self.add_child(parent, label, std::iter::empty::<(Name, Value)>())
    }

    /// Grafts a whole subtree (a copy of `sub`) as the last child of
    /// `parent`; returns the id of the copied root.
    pub fn graft(&mut self, parent: NodeId, sub: &Tree) -> NodeId {
        self.graft_node(parent, sub, Tree::ROOT)
    }

    fn graft_node(&mut self, parent: NodeId, sub: &Tree, at: NodeId) -> NodeId {
        let data = &sub.nodes[at.index()];
        let copied = self.add_child(parent, data.label.clone(), data.attrs.iter().cloned());
        for &c in &sub.nodes[at.index()].children {
            self.graft_node(copied, sub, c);
        }
        copied
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// The label of a node.
    pub fn label(&self, n: NodeId) -> &Name {
        &self.nodes[n.index()].label
    }

    /// The parent, or `None` for the root.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// The children, in document order.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].children
    }

    /// Attribute name/value pairs, in canonical order.
    pub fn attrs(&self, n: NodeId) -> &[(Name, Value)] {
        &self.nodes[n.index()].attrs
    }

    /// Just the attribute values (the tuple `ā` of the paper), in order.
    pub fn attr_values(&self, n: NodeId) -> impl Iterator<Item = &Value> + '_ {
        self.nodes[n.index()].attrs.iter().map(|(_, v)| v)
    }

    /// Looks up an attribute value by name (`ρ_a(n)` of the paper).
    pub fn attr(&self, n: NodeId, attr: &str) -> Option<&Value> {
        self.nodes[n.index()]
            .attrs
            .iter()
            .find(|(a, _)| a.as_str() == attr)
            .map(|(_, v)| v)
    }

    /// Replaces the attributes of `n` (used when normalising to DTD order).
    pub fn set_attrs<N, V, I>(&mut self, n: NodeId, attrs: I)
    where
        N: Into<Name>,
        V: Into<Value>,
        I: IntoIterator<Item = (N, V)>,
    {
        self.nodes[n.index()].attrs = attrs
            .into_iter()
            .map(|(a, v)| (a.into(), v.into()))
            .collect();
    }

    /// Overwrites a single attribute value; panics if the attribute is absent.
    pub fn set_attr(&mut self, n: NodeId, attr: &str, value: impl Into<Value>) {
        let slot = self.nodes[n.index()]
            .attrs
            .iter_mut()
            .find(|(a, _)| a.as_str() == attr)
            .unwrap_or_else(|| panic!("node {n:?} has no attribute {attr:?}"));
        slot.1 = value.into();
    }

    /// Reorders the children of `n`. The new list must be a permutation of
    /// the current children (panics otherwise).
    pub fn set_children(&mut self, n: NodeId, children: Vec<NodeId>) {
        let current = &self.nodes[n.index()].children;
        assert_eq!(
            children.len(),
            current.len(),
            "set_children: length mismatch"
        );
        let mut a = children.clone();
        let mut b = current.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "set_children: not a permutation of the children");
        self.nodes[n.index()].children = children;
    }

    /// The next sibling (`→` of the paper), if any.
    pub fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        let p = self.parent(n)?;
        let sibs = self.children(p);
        let pos = sibs.iter().position(|&s| s == n)?;
        sibs.get(pos + 1).copied()
    }

    /// The previous sibling, if any.
    pub fn prev_sibling(&self, n: NodeId) -> Option<NodeId> {
        let p = self.parent(n)?;
        let sibs = self.children(p);
        let pos = sibs.iter().position(|&s| s == n)?;
        pos.checked_sub(1).map(|i| sibs[i])
    }

    /// Position of `n` among its siblings (root has position 0).
    pub fn sibling_index(&self, n: NodeId) -> usize {
        match self.parent(n) {
            None => 0,
            Some(p) => self
                .children(p)
                .iter()
                .position(|&s| s == n)
                .expect("node is a child of its parent"),
        }
    }

    /// All following siblings of `n`, nearest first (`→*`, strict).
    pub fn following_siblings(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let (parent, pos) = match self.parent(n) {
            Some(p) => (Some(p), self.sibling_index(n)),
            None => (None, 0),
        };
        parent
            .into_iter()
            .flat_map(move |p| self.children(p)[pos + 1..].iter().copied())
    }

    /// All nodes of the tree in document (pre-)order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        DescendantsIter {
            tree: self,
            stack: vec![Tree::ROOT],
        }
    }

    /// Proper descendants of `n`, in document order.
    pub fn descendants(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        // The iterator pops from the end, so push children right-to-left.
        let stack: Vec<NodeId> = self.children(n).iter().rev().copied().collect();
        DescendantsIter { tree: self, stack }
    }

    /// `n` together with its proper descendants, in document order.
    pub fn descendants_or_self(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        DescendantsIter {
            tree: self,
            stack: vec![n],
        }
    }

    /// The depth of a node: root is at depth 0.
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 0;
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree: a single-node tree has height 0.
    pub fn height(&self) -> usize {
        self.nodes().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// The sequence of labels on the path from the root to `n`, inclusive.
    pub fn path_labels(&self, n: NodeId) -> Vec<Name> {
        let mut path = Vec::new();
        let mut cur = Some(n);
        while let Some(c) = cur {
            path.push(self.label(c).clone());
            cur = self.parent(c);
        }
        path.reverse();
        path
    }

    /// All constant data values occurring in the tree (with duplicates).
    pub fn data_values(&self) -> impl Iterator<Item = &Value> + '_ {
        self.nodes
            .iter()
            .flat_map(|d| d.attrs.iter().map(|(_, v)| v))
    }

    /// Approximate heap footprint in bytes: node records, child id lists,
    /// attribute vectors, and the string data behind labels and values.
    /// Interned `Name`s/`Arc<str>`s are counted once per occurrence — an
    /// overestimate under sharing, which is the safe direction for the
    /// engine caches' memory accounting (they evict too early, never too
    /// late).
    pub fn approx_bytes(&self) -> u64 {
        let mut total = (self.nodes.capacity() * std::mem::size_of::<NodeData>()) as u64;
        for d in &self.nodes {
            total += (d.children.capacity() * std::mem::size_of::<NodeId>()) as u64;
            total += (d.attrs.capacity() * std::mem::size_of::<(Name, Value)>()) as u64;
            total += d.label.as_str().len() as u64;
            for (name, value) in &d.attrs {
                total += name.as_str().len() as u64;
                if let Value::Str(s) = value {
                    total += s.len() as u64;
                }
            }
        }
        total
    }

    /// Grafts a copy of `sub` under `parent` at child position `pos`
    /// (existing children from `pos` on shift right); returns the id of
    /// the copied root. Panics if `pos` exceeds the current child count.
    pub fn graft_at(&mut self, parent: NodeId, pos: usize, sub: &Tree) -> NodeId {
        let count = self.nodes[parent.index()].children.len();
        assert!(pos <= count, "graft_at: position {pos} out of {count}");
        let id = self.graft_node(parent, sub, Tree::ROOT);
        // graft_node appended the new root last; rotate it into place.
        let kids = &mut self.nodes[parent.index()].children;
        let last = kids.pop().expect("graft_node pushed a child");
        kids.insert(pos, last);
        id
    }

    /// Detaches the subtree rooted at `n` from its parent. The nodes stay
    /// in the arena (ids remain stable and the detached subtree can still
    /// be read through them) but are no longer reachable from the root —
    /// traversals, conformance checks and serialisation all start at
    /// [`Tree::ROOT`] and never see them. Panics on the root.
    pub fn detach(&mut self, n: NodeId) {
        let p = self.nodes[n.index()]
            .parent
            .expect("detach: cannot detach the root");
        let kids = &mut self.nodes[p.index()].children;
        let pos = kids
            .iter()
            .position(|&c| c == n)
            .expect("node is a child of its parent");
        kids.remove(pos);
        self.nodes[n.index()].parent = None;
    }

    /// Extracts the subtree rooted at `n` as a standalone tree.
    pub fn subtree(&self, n: NodeId) -> Tree {
        let data = &self.nodes[n.index()];
        let mut t = Tree::with_root_attrs(data.label.clone(), data.attrs.iter().cloned());
        for &c in &data.children {
            t.graft_node(Tree::ROOT, self, c);
        }
        t
    }
}

/// Are `a` and `b` identical up to a renaming of null labels?
///
/// Walks both trees in lockstep (same labels, same child order, same
/// attribute names in order) while building a **bijection** between null
/// labels: a null on one side must always meet the same null on the other,
/// constants must be equal, and a null never matches a constant. This is
/// the right equivalence for chase outputs — two runs of the chase differ
/// only in how they number the fresh nulls — and is what the differential
/// tests in `tests/chase_equiv.rs` assert about the two chase engines.
pub fn isomorphic_mod_nulls(a: &Tree, b: &Tree) -> bool {
    use std::collections::HashMap;
    fn go(
        a: &Tree,
        an: NodeId,
        b: &Tree,
        bn: NodeId,
        fwd: &mut HashMap<u64, u64>,
        bwd: &mut HashMap<u64, u64>,
    ) -> bool {
        if a.label(an) != b.label(bn) || a.attrs(an).len() != b.attrs(bn).len() {
            return false;
        }
        for ((aname, av), (bname, bv)) in a.attrs(an).iter().zip(b.attrs(bn)) {
            if aname != bname {
                return false;
            }
            match (av, bv) {
                (Value::Null(x), Value::Null(y)) => {
                    if *fwd.entry(*x).or_insert(*y) != *y || *bwd.entry(*y).or_insert(*x) != *x {
                        return false;
                    }
                }
                (x, y) if x.is_null() || y.is_null() => return false,
                (x, y) => {
                    if x != y {
                        return false;
                    }
                }
            }
        }
        let (ac, bc) = (a.children(an), b.children(bn));
        ac.len() == bc.len() && ac.iter().zip(bc).all(|(&x, &y)| go(a, x, b, y, fwd, bwd))
    }
    let (mut fwd, mut bwd) = (HashMap::new(), HashMap::new());
    go(a, Tree::ROOT, b, Tree::ROOT, &mut fwd, &mut bwd)
}

struct DescendantsIter<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl Iterator for DescendantsIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.stack.pop()?;
        // Push children in reverse so the leftmost is popped first.
        for &c in self.tree.children(n).iter().rev() {
            self.stack.push(c);
        }
        Some(n)
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &Tree, n: NodeId, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            write!(f, "{:indent$}{}", "", t.label(n), indent = depth * 2)?;
            if !t.attrs(n).is_empty() {
                write!(f, "(")?;
                for (i, (a, v)) in t.attrs(n).iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}={v:?}")?;
                }
                write!(f, ")")?;
            }
            writeln!(f)?;
            for &c in t.children(n) {
                go(t, c, f, depth + 1)?;
            }
            Ok(())
        }
        go(self, Tree::ROOT, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the university document from the paper's introduction:
    /// r[prof(Ada)[teach[year(2008)[course(cs1), course(cs2)]],
    ///             supervise[student(Sue)]]]
    fn intro_tree() -> (Tree, Vec<NodeId>) {
        let mut t = Tree::new("r");
        let prof = t.add_child(Tree::ROOT, "prof", [("name", Value::str("Ada"))]);
        let teach = t.add_elem(prof, "teach");
        let year = t.add_child(teach, "year", [("y", Value::str("2008"))]);
        let c1 = t.add_child(year, "course", [("cno", Value::str("cs1"))]);
        let c2 = t.add_child(year, "course", [("cno", Value::str("cs2"))]);
        let sup = t.add_elem(prof, "supervise");
        let stu = t.add_child(sup, "student", [("sid", Value::str("Sue"))]);
        (t, vec![prof, teach, year, c1, c2, sup, stu])
    }

    #[test]
    fn navigation_axes() {
        let (t, ids) = intro_tree();
        let [prof, teach, year, c1, c2, sup, stu] = ids[..] else {
            unreachable!()
        };
        assert_eq!(t.parent(prof), Some(Tree::ROOT));
        assert_eq!(t.children(prof), &[teach, sup]);
        assert_eq!(t.next_sibling(c1), Some(c2));
        assert_eq!(t.next_sibling(c2), None);
        assert_eq!(t.prev_sibling(c2), Some(c1));
        assert_eq!(t.prev_sibling(c1), None);
        assert_eq!(t.next_sibling(Tree::ROOT), None);
        assert_eq!(t.following_siblings(teach).collect::<Vec<_>>(), vec![sup]);
        assert_eq!(t.depth(stu), 3);
        assert_eq!(t.depth(Tree::ROOT), 0);
        assert_eq!(t.height(), 4);
        assert_eq!(t.sibling_index(c2), 1);
        assert_eq!(t.label(year).as_str(), "year");
    }

    #[test]
    fn document_order_traversal() {
        let (t, _) = intro_tree();
        let labels: Vec<&str> = t.nodes().map(|n| t.label(n).as_str()).collect();
        assert_eq!(
            labels,
            [
                "r",
                "prof",
                "teach",
                "year",
                "course",
                "course",
                "supervise",
                "student"
            ]
        );
        let descs: Vec<&str> = t
            .descendants(t.children(Tree::ROOT)[0])
            .map(|n| t.label(n).as_str())
            .collect();
        assert_eq!(
            descs,
            ["teach", "year", "course", "course", "supervise", "student"]
        );
    }

    #[test]
    fn attributes() {
        let (t, ids) = intro_tree();
        let prof = ids[0];
        assert_eq!(t.attr(prof, "name"), Some(&Value::str("Ada")));
        assert_eq!(t.attr(prof, "missing"), None);
        assert_eq!(
            t.attr_values(prof).cloned().collect::<Vec<_>>(),
            vec![Value::str("Ada")]
        );
    }

    #[test]
    fn set_attr_overwrites() {
        let (mut t, ids) = intro_tree();
        t.set_attr(ids[0], "name", "Grace");
        assert_eq!(t.attr(ids[0], "name"), Some(&Value::str("Grace")));
    }

    #[test]
    #[should_panic(expected = "no attribute")]
    fn set_missing_attr_panics() {
        let (mut t, ids) = intro_tree();
        t.set_attr(ids[0], "nope", "x");
    }

    #[test]
    fn subtree_and_graft_round_trip() {
        let (t, ids) = intro_tree();
        let sub = t.subtree(ids[0]); // the prof subtree
        assert_eq!(sub.size(), 7);
        assert_eq!(sub.label(Tree::ROOT).as_str(), "prof");

        let mut host = Tree::new("r");
        let copied = host.graft(Tree::ROOT, &sub);
        assert_eq!(host.subtree(copied), sub);
    }

    #[test]
    fn detach_and_graft_at() {
        let (mut t, ids) = intro_tree();
        let [prof, teach, year, _c1, _c2, sup, _stu] = ids[..] else {
            unreachable!()
        };
        let arena_before = t.size();
        let teach_copy = t.subtree(teach);
        t.detach(teach);
        // The parent no longer lists the subtree; the arena keeps it.
        assert_eq!(t.children(prof), &[sup]);
        assert_eq!(t.parent(teach), None);
        assert_eq!(t.size(), arena_before);
        // Traversal from the root never reaches detached nodes.
        assert!(t.nodes().all(|n| n != teach && n != year));
        // Re-insert the same subtree at the front: structure round-trips.
        let back = t.graft_at(prof, 0, &teach_copy);
        assert_eq!(t.children(prof).len(), 2);
        assert_eq!(t.children(prof)[0], back);
        assert_eq!(t.subtree(back), teach_copy);
        // Middle and end positions.
        let solo = Tree::new("extra");
        let mid = t.graft_at(prof, 1, &solo);
        assert_eq!(t.children(prof), &[back, mid, sup]);
        let end = t.graft_at(prof, 3, &solo);
        assert_eq!(t.children(prof), &[back, mid, sup, end]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn graft_at_past_end_panics() {
        let mut t = Tree::new("r");
        t.graft_at(Tree::ROOT, 1, &Tree::new("a"));
    }

    #[test]
    #[should_panic(expected = "cannot detach the root")]
    fn detach_root_panics() {
        let mut t = Tree::new("r");
        t.detach(Tree::ROOT);
    }

    #[test]
    fn path_labels_from_root() {
        let (t, ids) = intro_tree();
        let stu = ids[6];
        let path: Vec<String> = t
            .path_labels(stu)
            .iter()
            .map(|n| n.as_str().to_string())
            .collect();
        assert_eq!(path, ["r", "prof", "supervise", "student"]);
    }

    #[test]
    fn structural_equality() {
        let (a, _) = intro_tree();
        let (b, _) = intro_tree();
        assert_eq!(a, b);
        let (mut c, ids) = intro_tree();
        c.set_attr(ids[6], "sid", "Bob");
        assert_ne!(a, c);
    }

    #[test]
    fn data_values_enumeration() {
        let (t, _) = intro_tree();
        let vals: Vec<String> = t.data_values().map(|v| v.to_string()).collect();
        assert_eq!(vals, ["Ada", "2008", "cs1", "cs2", "Sue"]);
    }

    #[test]
    fn isomorphism_mod_nulls_renames_consistently() {
        let mk = |n1: u64, n2: u64| {
            let mut t = Tree::new("r");
            t.add_child(
                Tree::ROOT,
                "a",
                [("x", Value::null(n1)), ("y", Value::null(n2))],
            );
            t.add_child(
                Tree::ROOT,
                "a",
                [("x", Value::null(n1)), ("y", Value::str("c"))],
            );
            t
        };
        // Same null pattern under different numberings: isomorphic.
        assert!(isomorphic_mod_nulls(&mk(0, 1), &mk(7, 3)));
        // Distinct nulls on one side collapsed on the other: not a bijection.
        assert!(!isomorphic_mod_nulls(&mk(0, 1), &mk(5, 5)));
        assert!(!isomorphic_mod_nulls(&mk(5, 5), &mk(0, 1)));
        // A null never matches a constant, and constants must be equal.
        let mut c1 = Tree::new("r");
        c1.add_child(Tree::ROOT, "a", [("x", Value::str("v"))]);
        let mut c2 = Tree::new("r");
        c2.add_child(Tree::ROOT, "a", [("x", Value::null(0))]);
        assert!(!isomorphic_mod_nulls(&c1, &c2));
        assert!(isomorphic_mod_nulls(&c1, &c1.clone()));
        // Structure differences are caught.
        let mut c3 = c1.clone();
        c3.add_elem(Tree::ROOT, "a");
        assert!(!isomorphic_mod_nulls(&c1, &c3));
    }
}
