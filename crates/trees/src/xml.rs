//! A small XML reader/writer for the element+attribute fragment.
//!
//! Documents in schema-mapping problems consist of elements with attributes
//! only — no mixed content, processing instructions, namespaces or entities
//! beyond the five predefined ones. This module parses and prints exactly
//! that fragment, so examples can work with ordinary-looking XML without an
//! external dependency.

use crate::tree::{NodeId, Tree};
use crate::value::Value;
use std::fmt::Write as _;

/// Errors raised while parsing XML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), XmlError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn skip_prolog_and_comments(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(i) => self.pos += i + 2,
                    None => return self.err("unterminated processing instruction"),
                }
            } else if self.input[self.pos..].starts_with(b"<!--") {
                match self.input[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(i) => self.pos += i + 3,
                    None => return self.err("unterminated comment"),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn quoted_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected a quoted attribute value"),
        };
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated attribute value"),
                Some(q) if q == quote => break,
                Some(b'&') => out.push(self.entity()?),
                Some(b) => out.push(b as char),
            }
        }
        Ok(out)
    }

    fn entity(&mut self) -> Result<char, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let name = &self.input[start..self.pos];
                self.pos += 1;
                return match name {
                    b"lt" => Ok('<'),
                    b"gt" => Ok('>'),
                    b"amp" => Ok('&'),
                    b"quot" => Ok('"'),
                    b"apos" => Ok('\''),
                    _ => self.err("unknown entity"),
                };
            }
            self.pos += 1;
        }
        self.err("unterminated entity")
    }

    /// Parses one element; appends under `parent` (or creates the tree when
    /// `parent` is `None`).
    fn element(&mut self, tree: &mut Option<Tree>, parent: Option<NodeId>) -> Result<(), XmlError> {
        self.eat(b'<')?;
        let label = self.name()?;
        let mut attrs: Vec<(String, Value)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') | Some(b'>') => break,
                Some(_) => {
                    let attr = self.name()?;
                    self.skip_ws();
                    self.eat(b'=')?;
                    self.skip_ws();
                    let value = self.quoted_value()?;
                    if attrs.iter().any(|(a, _)| *a == attr) {
                        return self.err(format!("duplicate attribute {attr:?}"));
                    }
                    attrs.push((attr, Value::from(value)));
                }
                None => return self.err("unterminated start tag"),
            }
        }

        let node = match (tree.as_mut(), parent) {
            (None, _) => {
                *tree = Some(Tree::with_root_attrs(label.as_str(), attrs));
                Tree::ROOT
            }
            (Some(t), Some(p)) => t.add_child(p, label.as_str(), attrs),
            (Some(_), None) => return self.err("multiple root elements"),
        };

        if self.peek() == Some(b'/') {
            self.pos += 1;
            self.eat(b'>')?;
            return Ok(());
        }
        self.eat(b'>')?;

        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"<!--") {
                self.skip_prolog_and_comments()?;
                continue;
            }
            if self.input[self.pos..].starts_with(b"</") {
                self.pos += 2;
                let close = self.name()?;
                if close != label {
                    return self.err(format!("mismatched close tag: expected </{label}>"));
                }
                self.skip_ws();
                self.eat(b'>')?;
                return Ok(());
            }
            if self.peek() == Some(b'<') {
                self.element(tree, Some(node))?;
            } else if self.peek().is_none() {
                return self.err(format!("missing close tag </{label}>"));
            } else {
                return self.err("text content is not supported in this fragment");
            }
        }
    }
}

/// Parses an XML document (element+attribute fragment) into a [`Tree`].
pub fn parse(input: &str) -> Result<Tree, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog_and_comments()?;
    let mut tree = None;
    p.element(&mut tree, None)?;
    p.skip_prolog_and_comments()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return p.err("trailing content after the root element");
    }
    Ok(tree.expect("root element parsed"))
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serialises a [`Tree`] as indented XML.
pub fn to_string(tree: &Tree) -> String {
    let mut out = String::new();
    fn node(tree: &Tree, n: NodeId, out: &mut String, depth: usize) {
        let _ = write!(out, "{:indent$}<{}", "", tree.label(n), indent = depth * 2);
        for (a, v) in tree.attrs(n) {
            let _ = write!(out, " {a}=\"");
            escape(&v.to_string(), out);
            out.push('"');
        }
        if tree.children(n).is_empty() {
            out.push_str("/>\n");
        } else {
            out.push_str(">\n");
            for &c in tree.children(n) {
                node(tree, c, out, depth + 1);
            }
            let _ = writeln!(
                out,
                "{:indent$}</{}>",
                "",
                tree.label(n),
                indent = depth * 2
            );
        }
    }
    node(tree, Tree::ROOT, &mut out, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<?xml version="1.0"?>
<!-- the running example of the paper -->
<r>
  <prof name="Ada">
    <teach>
      <year y="2008">
        <course cno="cs1"/>
        <course cno="cs2"/>
      </year>
    </teach>
    <supervise>
      <student sid="Sue"/>
    </supervise>
  </prof>
</r>"#;

    #[test]
    fn parse_round_trip() {
        let t = parse(DOC).unwrap();
        assert_eq!(t.size(), 8);
        let printed = to_string(&t);
        let t2 = parse(&printed).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn parses_attributes_in_order() {
        let t = parse(r#"<c cno="cs1" year="2008"/>"#).unwrap();
        let names: Vec<&str> = t
            .attrs(Tree::ROOT)
            .iter()
            .map(|(a, _)| a.as_str())
            .collect();
        assert_eq!(names, ["cno", "year"]);
    }

    #[test]
    fn entities_round_trip() {
        let t = parse(r#"<a v="x &lt; y &amp; &quot;z&quot;"/>"#).unwrap();
        assert_eq!(t.attr(Tree::ROOT, "v"), Some(&Value::str("x < y & \"z\"")));
        let t2 = parse(&to_string(&t)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn single_quotes_accepted() {
        let t = parse("<a v='hi'/>").unwrap();
        assert_eq!(t.attr(Tree::ROOT, "v"), Some(&Value::str("hi")));
    }

    #[test]
    fn rejects_mismatched_tags() {
        let e = parse("<a><b></a></a>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn rejects_text_content() {
        assert!(parse("<a>hello</a>").is_err());
    }

    #[test]
    fn rejects_duplicate_attributes() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse("<a").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse(r#"<a v="x"#).is_err());
    }

    #[test]
    fn comments_between_children() {
        let t = parse("<a><!-- c --><b/><!-- d --></a>").unwrap();
        assert_eq!(t.size(), 2);
    }
}
