//! A small XML reader/writer for the element+attribute fragment.
//!
//! Documents in schema-mapping problems consist of elements with attributes
//! only — no mixed content, namespaces or entities beyond the five
//! predefined ones. This module parses and prints exactly that fragment, so
//! examples can work with ordinary-looking XML without an external
//! dependency.
//!
//! Tokenisation lives in [`crate::sax`]; [`parse`] here is an arena builder
//! driving that pull reader, so the in-memory and streaming paths share
//! entity/attribute handling and emit identical diagnostics.

use crate::sax::{SaxEvent, SaxReader};
use crate::tree::{NodeId, Tree};
use std::fmt::Write as _;

/// Errors raised while parsing XML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// 1-based line of the error.
    pub line: u32,
    /// 1-based column (in bytes) of the error.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XML parse error at byte {} (line {}, column {}): {}",
            self.offset, self.line, self.col, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Parses an XML document (element+attribute fragment) into a [`Tree`].
pub fn parse(input: &str) -> Result<Tree, XmlError> {
    let mut reader = SaxReader::new(input.as_bytes());
    let mut tree: Option<Tree> = None;
    let mut stack: Vec<NodeId> = Vec::new();
    while let Some(event) = reader.next_event()? {
        match event {
            SaxEvent::Open { label, attrs } => {
                let node = match (tree.as_mut(), stack.last()) {
                    (None, _) => {
                        tree = Some(Tree::with_root_attrs(label, attrs));
                        Tree::ROOT
                    }
                    (Some(t), Some(&parent)) => t.add_child(parent, label, attrs),
                    // The reader rejects a second root as trailing content.
                    (Some(_), None) => unreachable!("reader enforces a single root"),
                };
                stack.push(node);
            }
            SaxEvent::Close { .. } => {
                stack.pop();
            }
        }
    }
    Ok(tree.expect("reader yields at least the root element"))
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serialises a [`Tree`] as indented XML.
pub fn to_string(tree: &Tree) -> String {
    let mut out = String::new();
    fn node(tree: &Tree, n: NodeId, out: &mut String, depth: usize) {
        let _ = write!(out, "{:indent$}<{}", "", tree.label(n), indent = depth * 2);
        for (a, v) in tree.attrs(n) {
            let _ = write!(out, " {a}=\"");
            escape(&v.to_string(), out);
            out.push('"');
        }
        if tree.children(n).is_empty() {
            out.push_str("/>\n");
        } else {
            out.push_str(">\n");
            for &c in tree.children(n) {
                node(tree, c, out, depth + 1);
            }
            let _ = writeln!(
                out,
                "{:indent$}</{}>",
                "",
                tree.label(n),
                indent = depth * 2
            );
        }
    }
    node(tree, Tree::ROOT, &mut out, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    const DOC: &str = r#"<?xml version="1.0"?>
<!-- the running example of the paper -->
<r>
  <prof name="Ada">
    <teach>
      <year y="2008">
        <course cno="cs1"/>
        <course cno="cs2"/>
      </year>
    </teach>
    <supervise>
      <student sid="Sue"/>
    </supervise>
  </prof>
</r>"#;

    #[test]
    fn parse_round_trip() {
        let t = parse(DOC).unwrap();
        assert_eq!(t.size(), 8);
        let printed = to_string(&t);
        let t2 = parse(&printed).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn parses_attributes_in_order() {
        let t = parse(r#"<c cno="cs1" year="2008"/>"#).unwrap();
        let names: Vec<&str> = t
            .attrs(Tree::ROOT)
            .iter()
            .map(|(a, _)| a.as_str())
            .collect();
        assert_eq!(names, ["cno", "year"]);
    }

    #[test]
    fn entities_round_trip() {
        let t = parse(r#"<a v="x &lt; y &amp; &quot;z&quot;"/>"#).unwrap();
        assert_eq!(t.attr(Tree::ROOT, "v"), Some(&Value::str("x < y & \"z\"")));
        let t2 = parse(&to_string(&t)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn single_quotes_accepted() {
        let t = parse("<a v='hi'/>").unwrap();
        assert_eq!(t.attr(Tree::ROOT, "v"), Some(&Value::str("hi")));
    }

    #[test]
    fn rejects_mismatched_tags() {
        let e = parse("<a><b></a></a>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn rejects_text_content() {
        assert!(parse("<a>hello</a>").is_err());
    }

    #[test]
    fn rejects_duplicate_attributes() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse("<a").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse(r#"<a v="x"#).is_err());
    }

    #[test]
    fn comments_between_children() {
        let t = parse("<a><!-- c --><b/><!-- d --></a>").unwrap();
        assert_eq!(t.size(), 2);
    }
}
