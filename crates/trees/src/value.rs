//! Attribute values: the data domain `V` of the paper, plus labelled nulls.
//!
//! The paper treats attribute values as coming from an infinite domain with
//! equality. Data-exchange solutions additionally need *labelled nulls*
//! (fresh values invented for existential variables, as in the relational
//! chase); we give them their own variant so they are cheap to mint and
//! trivially distinct from source data.

use std::fmt;
use std::sync::Arc;

/// A data value attached to a tree node attribute.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A string constant.
    Str(Arc<str>),
    /// An integer constant (convenient for generated workloads).
    Int(i64),
    /// A labelled null `⊥_k`, as produced by the chase for existential
    /// variables. Two nulls are equal iff their labels are equal.
    Null(u64),
}

impl Value {
    /// String-constant constructor.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Integer-constant constructor.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Labelled-null constructor.
    pub fn null(k: u64) -> Self {
        Value::Null(k)
    }

    /// Is this value a labelled null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Is this value a constant (non-null)?
    pub fn is_constant(&self) -> bool {
        !self.is_null()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Null(k) => write!(f, "⊥{k}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Null(k) => write!(f, "_:n{k}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

/// A monotone source of fresh labelled nulls.
#[derive(Debug, Default, Clone)]
pub struct NullFactory {
    next: u64,
}

impl NullFactory {
    /// Creates a factory starting at `⊥0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh null, never returned before by this factory.
    pub fn fresh(&mut self) -> Value {
        let v = Value::Null(self.next);
        self.next += 1;
        v
    }

    /// Number of nulls minted so far.
    pub fn minted(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_compare_by_content() {
        assert_eq!(Value::str("a"), Value::from("a"));
        assert_ne!(Value::str("a"), Value::str("b"));
        assert_eq!(Value::int(3), Value::from(3));
        // Different variants are never equal.
        assert_ne!(Value::str("3"), Value::int(3));
    }

    #[test]
    fn nulls_compare_by_label() {
        assert_eq!(Value::null(0), Value::null(0));
        assert_ne!(Value::null(0), Value::null(1));
        assert!(Value::null(7).is_null());
        assert!(!Value::str("x").is_null());
    }

    #[test]
    fn factory_mints_distinct_nulls() {
        let mut f = NullFactory::new();
        let a = f.fresh();
        let b = f.fresh();
        assert_ne!(a, b);
        assert_eq!(f.minted(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("cs101").to_string(), "cs101");
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::null(2).to_string(), "_:n2");
    }
}
