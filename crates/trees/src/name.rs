//! Interned element-type and attribute names.
//!
//! Labels (element types from the alphabet Γ of the paper) and attribute
//! names are shared pervasively between trees, DTDs, patterns and mappings.
//! `Name` wraps an `Arc<str>` so that clones are reference-count bumps, with
//! content-based equality/hashing (and a pointer fast path for equality).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An interned string used for element-type labels and attribute names.
#[derive(Clone)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Name {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", &*self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s))
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// Convenience constructor: `name("prof")`.
pub fn name(s: &str) -> Name {
    Name::new(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_is_by_content() {
        let a = Name::new("prof");
        let b = Name::new(String::from("prof"));
        assert_eq!(a, b);
        assert_ne!(a, Name::new("prog"));
    }

    #[test]
    fn clone_is_pointer_shared() {
        let a = Name::new("course");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn hashes_agree_with_str() {
        let mut set = HashSet::new();
        set.insert(Name::new("student"));
        // Borrow<str> lets us look up by &str.
        assert!(set.contains("student"));
        assert!(!set.contains("staff"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![Name::new("b"), Name::new("a"), Name::new("c")];
        v.sort();
        assert_eq!(v, vec![Name::new("a"), Name::new("b"), Name::new("c")]);
    }

    #[test]
    fn display_and_debug() {
        let n = Name::new("year");
        assert_eq!(n.to_string(), "year");
        assert_eq!(format!("{n:?}"), "\"year\"");
    }
}
