//! The naive reference evaluator — a direct transcription of the paper's
//! semantics (§3), retained as the specification oracle for differential
//! tests against the optimized kernel in [`crate::compiled`].
//!
//! It builds valuations as persistent `BTreeMap`s, cloning at every binding
//! site, and performs no pruning. Do not use it on hot paths; use
//! [`crate::eval`], which delegates to the compiled kernel.

use crate::ast::{ListItem, Pattern, SeqOp};
use crate::eval::Valuation;
use xmlmap_trees::{NodeId, Tree, Value};

/// Evaluates `π(T)` by exhaustive search (see [`crate::eval::all_matches`]).
pub fn all_matches(tree: &Tree, pattern: &Pattern) -> Vec<Valuation> {
    let mut out = std::collections::BTreeSet::new();
    visit_pattern(tree, Tree::ROOT, pattern, &Valuation::new(), &mut |env| {
        out.insert(env.clone());
        true
    });
    out.into_iter().collect()
}

/// Does some valuation extending `fixed` witness the pattern at the root?
pub fn matches_with(tree: &Tree, pattern: &Pattern, fixed: &Valuation) -> bool {
    !visit_pattern(tree, Tree::ROOT, pattern, fixed, &mut |_| false)
}

/// Like [`matches_with`], anchored at an arbitrary node.
pub fn matches_at(tree: &Tree, node: NodeId, pattern: &Pattern, fixed: &Valuation) -> bool {
    !visit_pattern(tree, node, pattern, fixed, &mut |_| false)
}

/// Calls `found` on every valuation extending `seed` witnessing the
/// pattern at the root; returns `true` iff stopped early.
pub fn for_each_match(
    tree: &Tree,
    pattern: &Pattern,
    seed: &Valuation,
    found: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    !visit_pattern(tree, Tree::ROOT, pattern, seed, found)
}

/// Core visitor: calls `found` on every valuation extending `env` that
/// witnesses `pattern` at `node`. `found` returns `true` to continue the
/// enumeration; the visitor returns `false` iff the search was aborted.
fn visit_pattern(
    tree: &Tree,
    node: NodeId,
    pattern: &Pattern,
    env: &Valuation,
    found: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    // Label test.
    if !pattern.label.accepts(tree.label(node)) {
        return true;
    }
    // Arity test: a nonempty x̄ is bound to *the* attribute tuple of the
    // node, so lengths must agree. An empty tuple imposes no attribute
    // requirement — this is how the paper's value-free (SM°) patterns like
    // `r/a → r/a` read, and how the paper itself abbreviates nodes whose
    // attributes are irrelevant.
    let attrs: Vec<&Value> = tree.attr_values(node).collect();
    if !pattern.vars.is_empty() && attrs.len() != pattern.vars.len() {
        return true;
    }
    // Bind the variable tuple; reused variables must agree.
    let mut env = env.clone();
    for (var, value) in pattern.vars.iter().zip(&attrs) {
        match env.get(var) {
            Some(bound) if bound != *value => return true,
            Some(_) => {}
            None => {
                env.insert(var.clone(), (*value).clone());
            }
        }
    }
    visit_items(tree, node, &pattern.list, 0, &env, found)
}

/// Satisfies list items `items[k..]` in order, threading the valuation.
fn visit_items(
    tree: &Tree,
    node: NodeId,
    items: &[ListItem],
    k: usize,
    env: &Valuation,
    found: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    if k == items.len() {
        return found(env);
    }
    match &items[k] {
        ListItem::Descendant(sub) => {
            // Some proper descendant matches `sub`.
            for d in tree.descendants(node) {
                let alive = visit_pattern(tree, d, sub, env, &mut |env2| {
                    visit_items(tree, node, items, k + 1, env2, found)
                });
                if !alive {
                    return false;
                }
            }
            true
        }
        ListItem::Seq { members, ops } => {
            // The sequence is anchored at some child of `node`.
            let children = tree.children(node);
            for (i, _) in children.iter().enumerate() {
                let alive = visit_seq(tree, children, i, members, ops, 0, env, &mut |env2| {
                    visit_items(tree, node, items, k + 1, env2, found)
                });
                if !alive {
                    return false;
                }
            }
            true
        }
    }
}

/// Matches `members[m..]` starting with `members[m]` at `children[i]`,
/// respecting the horizontal operators.
#[allow(clippy::too_many_arguments)]
fn visit_seq(
    tree: &Tree,
    children: &[NodeId],
    i: usize,
    members: &[Pattern],
    ops: &[SeqOp],
    m: usize,
    env: &Valuation,
    found: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    visit_pattern(tree, children[i], &members[m], env, &mut |env2| {
        if m + 1 == members.len() {
            return found(env2);
        }
        match ops[m] {
            SeqOp::Next => {
                // The very next sibling.
                if i + 1 < children.len() {
                    visit_seq(tree, children, i + 1, members, ops, m + 1, env2, found)
                } else {
                    true
                }
            }
            SeqOp::Following => {
                // Some strictly-later sibling.
                for j in i + 1..children.len() {
                    if !visit_seq(tree, children, j, members, ops, m + 1, env2, found) {
                        return false;
                    }
                }
                true
            }
        }
    })
}
