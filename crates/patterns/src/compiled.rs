//! The compiled pattern-evaluation kernel.
//!
//! [`crate::eval`]'s public functions delegate here. The kernel avoids the
//! two costs that dominated the naive evaluator (retained for differential
//! testing in [`crate::reference`]):
//!
//! * **Interned variables** — [`CompiledPattern`] assigns every pattern
//!   variable a dense `u32` id, so a valuation in flight is a
//!   `Vec<Option<Value>>` plus an undo **trail**, not a persistent
//!   `BTreeMap` cloned at every binding site. Backtracking pops the trail.
//! * **Bitset feasibility tables** — [`Matcher`] precomputes, per tree
//!   node, one `u64`-word row per table with a bit for every pattern node:
//!   `ok` ("the pattern subtree matches here, values ignored") and `sub`
//!   ("… somewhere in this node's subtree"). The subtree closure is a
//!   word-parallel OR, so building costs `O(|T|·|π|·width)` word ops
//!   rather than the per-pair scans of the old table. The tables answer
//!   repeat-free Boolean matching outright (Prop 4.2's PTIME bound) and
//!   double as a sound pruning memo for the valued search: values only
//!   ever *restrict* matches, so a cleared bit proves no valued match can
//!   exist below — shared across every probe against the same tree.

use crate::ast::{LabelTest, ListItem, Pattern, SeqOp, Var};
use crate::eval::Valuation;
use xmlmap_trees::{NodeId, Tree, Value};

/// One pattern node, flattened: label test, interned variable tuple, and
/// the child list referencing other nodes by index.
pub(crate) struct CNode {
    pub(crate) label: LabelTest,
    /// Dense variable ids, in tuple order.
    pub(crate) vars: Vec<u32>,
    pub(crate) items: Vec<CItem>,
}

/// A flattened list item; members reference [`CompiledPattern::nodes`].
pub(crate) enum CItem {
    /// `π₁ op π₂ op … πₖ` — a sequence of siblings.
    Seq {
        members: Vec<usize>,
        ops: Vec<SeqOp>,
    },
    /// `//π` — some proper descendant.
    Descendant(usize),
}

/// A pattern lowered to a flat post-order node array with interned
/// variables. Compiling is a single traversal; the result borrows nothing
/// from the source [`Pattern`].
pub struct CompiledPattern {
    /// Post-order (children before parents); the root is last.
    pub(crate) nodes: Vec<CNode>,
    /// Dense id → variable name.
    vars: Vec<Var>,
    /// Does any variable occur more than once (implicit equality)?
    has_repeated: bool,
}

impl CompiledPattern {
    /// Compiles `pattern`, interning its variables in first-occurrence
    /// order.
    pub fn new(pattern: &Pattern) -> CompiledPattern {
        let mut c = CompiledPattern {
            nodes: Vec::new(),
            vars: Vec::new(),
            has_repeated: false,
        };
        c.lower(pattern);
        c
    }

    fn intern(&mut self, var: &Var) -> u32 {
        match self.vars.iter().position(|v| v == var) {
            Some(i) => {
                self.has_repeated = true;
                i as u32
            }
            None => {
                self.vars.push(var.clone());
                (self.vars.len() - 1) as u32
            }
        }
    }

    /// Lowers `p` and its subpatterns, post-order; returns `p`'s index.
    fn lower(&mut self, p: &Pattern) -> usize {
        // Bind the tuple before the subtree so ids follow the written
        // left-to-right order of first occurrence.
        let vars: Vec<u32> = p.vars.iter().map(|v| self.intern(v)).collect();
        let items: Vec<CItem> = p
            .list
            .iter()
            .map(|item| match item {
                ListItem::Seq { members, ops } => CItem::Seq {
                    members: members.iter().map(|m| self.lower(m)).collect(),
                    ops: ops.clone(),
                },
                ListItem::Descendant(d) => CItem::Descendant(self.lower(d)),
            })
            .collect();
        self.nodes.push(CNode {
            label: p.label.clone(),
            vars,
            items,
        });
        self.nodes.len() - 1
    }

    /// The root node's index (patterns are non-empty, so this is valid).
    pub(crate) fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of distinct variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Dense id → variable name table, in first-occurrence order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The dense id of `var`, if the pattern uses it.
    pub fn var_id(&self, var: &Var) -> Option<u32> {
        self.vars.iter().position(|v| v == var).map(|i| i as u32)
    }

    /// Does any variable occur twice (implicit equality)?
    pub fn has_repeated_variable(&self) -> bool {
        self.has_repeated
    }

    /// Approximate heap footprint in bytes of the flattened node array and
    /// variable table.
    pub fn approx_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                48 + n.vars.capacity() as u64 * 4
                    + n.items
                        .iter()
                        .map(|it| match it {
                            CItem::Seq { members, ops } => {
                                32 + members.capacity() as u64 * 8 + ops.capacity() as u64
                            }
                            CItem::Descendant(_) => 16,
                        })
                        .sum::<u64>()
            })
            .sum::<u64>()
            + self.vars.len() as u64 * 32
    }
}

/// The in-flight valuation: dense environment plus undo trail. Bindings
/// are *borrowed* from the tree (or the seed) — backtracking never clones
/// a value; materialization into a [`Valuation`] clones once per reported
/// match.
struct EvalState<'e> {
    env: Vec<Option<&'e Value>>,
    trail: Vec<u32>,
}

impl<'e> EvalState<'e> {
    /// Rolls the environment back to a trail mark.
    fn undo(&mut self, mark: usize) {
        for id in self.trail.drain(mark..) {
            self.env[id as usize] = None;
        }
    }
}

/// A pattern prepared against one tree: the bitset feasibility tables,
/// shared by every probe ([`Matcher::matches_with`],
/// [`Matcher::for_each_match`], …) on that tree.
pub struct Matcher<'t, 'p> {
    tree: &'t Tree,
    pat: &'p CompiledPattern,
    /// Words per bitset row (`⌈|π| / 64⌉`, min 1).
    words: usize,
    /// `ok[t*words..]`: pattern node `p` structurally matches at tree
    /// node `t` (bit `p`).
    ok: Vec<u64>,
    /// `sub[t*words..]`: … somewhere in `t`'s subtree, `t` included.
    sub: Vec<u64>,
}

/// Reusable DP buffers for [`Matcher::seq_places`] — table construction
/// calls it once per (tree node, pattern node) pair, so per-call `Vec`
/// allocations would dominate the build.
#[derive(Default)]
struct SeqScratch {
    can: Vec<bool>,
    next: Vec<bool>,
    suffix: Vec<bool>,
}

impl<'t, 'p> Matcher<'t, 'p> {
    /// Builds the feasibility tables bottom-up over `tree`.
    pub fn new(tree: &'t Tree, pat: &'p CompiledPattern) -> Matcher<'t, 'p> {
        let n_tree = tree.size();
        let n_pat = pat.nodes.len();
        let words = n_pat.div_ceil(64).max(1);
        let mut m = Matcher {
            tree,
            pat,
            words,
            ok: vec![0u64; n_tree * words],
            sub: vec![0u64; n_tree * words],
        };
        // Candidate masks: for each label, the pattern nodes it can head
        // (plus wildcards). A tree node then only tests those bits instead
        // of scanning every pattern node.
        let mut wild = vec![0u64; words];
        let mut by_label: std::collections::HashMap<&str, Vec<u64>> =
            std::collections::HashMap::new();
        for (pi, p) in pat.nodes.iter().enumerate() {
            match &p.label {
                LabelTest::Wildcard => wild[pi / 64] |= 1 << (pi % 64),
                LabelTest::Label(name) => {
                    by_label
                        .entry(name.as_str())
                        .or_insert_with(|| vec![0u64; words])[pi / 64] |= 1 << (pi % 64);
                }
            }
        }
        // Patterns usually mention only a handful of distinct labels; a
        // linear scan (length pre-check + memcmp) is cheaper per tree node
        // than hashing every label, so reserve the map for wide alphabets.
        let scan_labels: Option<Vec<(&str, &[u64])>> = (by_label.len() <= 8)
            .then(|| by_label.iter().map(|(k, v)| (*k, v.as_slice())).collect());
        let mut scratch = SeqScratch::default();
        // Reverse pre-order visits children before parents.
        let order: Vec<NodeId> = tree.nodes().collect();
        for &t in order.iter().rev() {
            let ti = t.index();
            let children = tree.children(t);
            let label = tree.label(t).as_str();
            let label_mask: Option<&[u64]> = match &scan_labels {
                Some(list) => list.iter().find(|(k, _)| *k == label).map(|(_, v)| *v),
                None => by_label.get(label).map(|v| v.as_slice()),
            };
            let n_attrs = tree.attrs(t).len();
            for w in 0..words {
                let mut cand = wild[w] | label_mask.map_or(0, |mask| mask[w]);
                while cand != 0 {
                    let pi = w * 64 + cand.trailing_zeros() as usize;
                    cand &= cand - 1;
                    let p = &pat.nodes[pi];
                    if !p.vars.is_empty() && n_attrs != p.vars.len() {
                        continue;
                    }
                    let all_items = p.items.iter().all(|item| match item {
                        CItem::Descendant(d) => {
                            children.iter().any(|c| m.bit(&m.sub, c.index(), *d))
                        }
                        CItem::Seq { members, ops } => {
                            m.seq_places(children, members, ops, &mut scratch)
                        }
                    });
                    if all_items {
                        m.ok[ti * words + w] |= 1 << (pi % 64);
                    }
                }
            }
            // sub = ok | OR over children, one word at a time.
            for w in 0..words {
                let mut acc = m.ok[ti * words + w];
                for c in children {
                    acc |= m.sub[c.index() * words + w];
                }
                m.sub[ti * words + w] = acc;
            }
        }
        m
    }

    #[inline]
    fn bit(&self, table: &[u64], ti: usize, pi: usize) -> bool {
        table[ti * self.words + pi / 64] >> (pi % 64) & 1 != 0
    }

    #[inline]
    fn ok_bit(&self, t: NodeId, pi: usize) -> bool {
        self.bit(&self.ok, t.index(), pi)
    }

    #[inline]
    fn sub_bit(&self, t: NodeId, pi: usize) -> bool {
        self.bit(&self.sub, t.index(), pi)
    }

    /// Can the sequence be placed along `children`, structurally?
    /// Right-to-left DP exactly as the old table, over bit lookups.
    fn seq_places(
        &self,
        children: &[NodeId],
        members: &[usize],
        ops: &[SeqOp],
        scratch: &mut SeqScratch,
    ) -> bool {
        if children.is_empty() {
            return false;
        }
        let width = children.len();
        let member_ok = |m: usize, i: usize| self.bit(&self.ok, children[i].index(), members[m]);
        let can = &mut scratch.can;
        can.clear();
        can.extend((0..width).map(|i| member_ok(members.len() - 1, i)));
        for m in (0..members.len() - 1).rev() {
            let next = &mut scratch.next;
            next.clear();
            next.resize(width, false);
            match ops[m] {
                SeqOp::Next => {
                    for (i, slot) in next.iter_mut().enumerate().take(width - 1) {
                        *slot = member_ok(m, i) && can[i + 1];
                    }
                }
                SeqOp::Following => {
                    let suffix = &mut scratch.suffix;
                    suffix.clear();
                    suffix.resize(width + 1, false);
                    for i in (0..width).rev() {
                        suffix[i] = suffix[i + 1] || can[i];
                    }
                    for (i, slot) in next.iter_mut().enumerate().take(width - 1) {
                        *slot = member_ok(m, i) && suffix[i + 1];
                    }
                }
            }
            std::mem::swap(can, next);
        }
        can.iter().any(|&b| b)
    }

    /// Structural (value-free) feasibility of the whole pattern at `node`.
    ///
    /// For repeat-free patterns this *is* the Boolean answer (Prop 4.2);
    /// with repeated variables it is a sound over-approximation.
    pub fn feasible_at(&self, node: NodeId) -> bool {
        self.ok_bit(node, self.pat.root())
    }

    /// [`Matcher::feasible_at`] anchored at the root.
    pub fn feasible(&self) -> bool {
        self.feasible_at(Tree::ROOT)
    }

    fn fresh_state<'e>(&self, seed: &'e Valuation) -> EvalState<'e> {
        let mut env = vec![None; self.pat.var_count()];
        for (var, value) in seed {
            if let Some(id) = self.pat.var_id(var) {
                env[id as usize] = Some(value);
            }
        }
        EvalState {
            env,
            trail: Vec::new(),
        }
    }

    /// Rebuilds a public [`Valuation`] from the dense environment; `seed`
    /// entries for variables outside the pattern are carried through
    /// unchanged (the naive evaluator did the same).
    fn materialize(&self, seed: &Valuation, state: &EvalState<'_>) -> Valuation {
        let mut out = seed.clone();
        for (id, slot) in state.env.iter().enumerate() {
            if let Some(value) = slot {
                out.insert(self.pat.vars[id].clone(), (*value).clone());
            }
        }
        out
    }

    /// Calls `found` on every valuation extending `seed` that witnesses the
    /// pattern at `node`; `found` returns `false` to stop. Returns `true`
    /// iff the enumeration was stopped early.
    pub fn for_each_match_at(
        &self,
        node: NodeId,
        seed: &Valuation,
        found: &mut dyn FnMut(&Valuation) -> bool,
    ) -> bool {
        let mut state = self.fresh_state(seed);
        !self.visit_pattern(&mut state, node, self.pat.root(), &mut |matcher, st| {
            found(&matcher.materialize(seed, st))
        })
    }

    /// [`Matcher::for_each_match_at`] anchored at the root.
    pub fn for_each_match(
        &self,
        seed: &Valuation,
        found: &mut dyn FnMut(&Valuation) -> bool,
    ) -> bool {
        self.for_each_match_at(Tree::ROOT, seed, found)
    }

    /// Does some valuation extending `seed` witness the pattern at the
    /// root?
    pub fn matches_with(&self, seed: &Valuation) -> bool {
        self.for_each_match(seed, &mut |_| false)
    }

    /// [`Matcher::matches_with`] at an arbitrary anchor.
    pub fn matches_at(&self, node: NodeId, seed: &Valuation) -> bool {
        self.for_each_match_at(node, seed, &mut |_| false)
    }

    /// Dense-id probing: like [`Matcher::for_each_match_at`], but the seed
    /// and the valuations handed to `found` live in the interned id space
    /// (`env[id]`, ids from [`CompiledPattern::var_id`]) as *borrowed*
    /// values — no [`Valuation`] is ever materialized and no value is ever
    /// cloned. This is the hot-path entry point for callers issuing many
    /// probes, e.g. per-firing std checks: translate the shared variables
    /// to id pairs once, then reseed a dense buffer per probe.
    /// `seed_env.len()` must equal [`CompiledPattern::var_count`].
    pub fn for_each_match_dense<'e>(
        &'e self,
        node: NodeId,
        seed_env: &[Option<&'e Value>],
        found: &mut dyn FnMut(&[Option<&Value>]) -> bool,
    ) -> bool {
        debug_assert_eq!(seed_env.len(), self.pat.var_count());
        let mut state = EvalState {
            env: seed_env.to_vec(),
            trail: Vec::new(),
        };
        !self.visit_pattern(&mut state, node, self.pat.root(), &mut |_, st| {
            found(&st.env)
        })
    }

    /// Boolean probe under a dense seed (see
    /// [`Matcher::for_each_match_dense`]).
    pub fn matches_dense<'e>(&'e self, node: NodeId, seed_env: &[Option<&'e Value>]) -> bool {
        self.for_each_match_dense(node, seed_env, &mut |_| false)
    }

    /// All complete matches at the root as **dense tuples** of values
    /// borrowed from the tree: `tuple[id]` is the value of the variable
    /// with interned id `id` (see [`CompiledPattern::var_id`]).
    ///
    /// The rows are deduplicated and sorted in alphabetical variable order,
    /// exactly like [`Matcher::all_matches`] — the two differ only in that
    /// no [`Valuation`] is built and no value is cloned. This is the
    /// match-enumeration hook for bulk consumers such as the chase's firing
    /// enumeration: tuples borrow from the tree (not from the matcher), so
    /// they outlive the per-tree tables.
    pub fn all_match_tuples(&self) -> Vec<Vec<&'t Value>> {
        let nvars = self.pat.var_count();
        let mut perm: Vec<usize> = (0..nvars).collect();
        perm.sort_by(|&a, &b| self.pat.vars[a].cmp(&self.pat.vars[b]));
        let mut state = EvalState {
            env: vec![None; nvars],
            trail: Vec::new(),
        };
        // Collect matches as tuples of borrowed values (the refs point into
        // the tree, so they survive backtracking).
        let mut tuples: Vec<Vec<&'t Value>> = Vec::new();
        self.visit_pattern(&mut state, Tree::ROOT, self.pat.root(), &mut |_, st| {
            tuples.push(
                st.env
                    .iter()
                    .map(|v| v.expect("a complete match binds every variable"))
                    .collect(),
            );
            true
        });
        tuples.sort_unstable_by(|a, b| {
            perm.iter()
                .map(|&i| a[i].cmp(b[i]))
                .find(|c| *c != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        tuples.dedup();
        tuples
    }

    /// All valuations witnessing the pattern at the root, deduplicated
    /// and sorted.
    ///
    /// Deduplication happens on dense value tuples; `Valuation`s are built
    /// only for the surviving rows. The sort key replays `BTreeMap`
    /// ordering (all rows share the same key set, so map order is value
    /// order in alphabetical variable order), keeping the result identical
    /// to the naive evaluator's sorted set.
    pub fn all_matches(&self) -> Vec<Valuation> {
        self.all_match_tuples()
            .into_iter()
            .map(|tuple| {
                self.pat
                    .vars
                    .iter()
                    .cloned()
                    .zip(tuple.into_iter().cloned())
                    .collect()
            })
            .collect()
    }

    /// Core visitor. `cont` is invoked (with the live state) once per way
    /// of witnessing pattern node `pnode` at `tnode`; it returns `true` to
    /// continue enumerating. The return value is "still alive" — `false`
    /// propagates an abort. The environment is always restored before
    /// returning.
    fn visit_pattern<'e>(
        &self,
        state: &mut EvalState<'e>,
        tnode: NodeId,
        pnode: usize,
        cont: &mut dyn FnMut(&Self, &mut EvalState<'e>) -> bool,
    ) -> bool
    where
        't: 'e,
    {
        // Structural pruning: label, arity, and every value-free placement
        // obligation below this pair — one bit test.
        if !self.ok_bit(tnode, pnode) {
            return true;
        }
        let p = &self.pat.nodes[pnode];
        let mark = state.trail.len();
        // Bind the variable tuple; repeated variables must agree. The
        // bound value is a borrow of the tree's attribute — no clone.
        if !p.vars.is_empty() {
            for (&id, value) in p.vars.iter().zip(self.tree.attr_values(tnode)) {
                match &state.env[id as usize] {
                    Some(bound) if *bound != value => {
                        state.undo(mark);
                        return true;
                    }
                    Some(_) => {}
                    None => {
                        state.env[id as usize] = Some(value);
                        state.trail.push(id);
                    }
                }
            }
        }
        let alive = self.visit_items(state, tnode, pnode, 0, cont);
        state.undo(mark);
        alive
    }

    /// Satisfies `items[k..]` of pattern node `pnode` at `tnode`.
    fn visit_items<'e>(
        &self,
        state: &mut EvalState<'e>,
        tnode: NodeId,
        pnode: usize,
        k: usize,
        cont: &mut dyn FnMut(&Self, &mut EvalState<'e>) -> bool,
    ) -> bool
    where
        't: 'e,
    {
        let items = &self.pat.nodes[pnode].items;
        let Some(item) = items.get(k) else {
            return cont(self, state);
        };
        match item {
            CItem::Descendant(d) => {
                // Proper descendants in document order, skipping whole
                // subtrees with no structural match for `d`.
                let mut stack: Vec<NodeId> =
                    self.tree.children(tnode).iter().rev().copied().collect();
                while let Some(x) = stack.pop() {
                    if !self.sub_bit(x, *d) {
                        continue;
                    }
                    if self.ok_bit(x, *d) {
                        let alive = self.visit_pattern(state, x, *d, &mut |matcher, st| {
                            matcher.visit_items(st, tnode, pnode, k + 1, cont)
                        });
                        if !alive {
                            return false;
                        }
                    }
                    stack.extend(self.tree.children(x).iter().rev());
                }
                true
            }
            CItem::Seq { members, ops } => {
                let children = self.tree.children(tnode);
                for i in 0..children.len() {
                    let alive =
                        self.visit_seq(children, i, members, ops, 0, state, &mut |matcher, st| {
                            matcher.visit_items(st, tnode, pnode, k + 1, cont)
                        });
                    if !alive {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Matches `members[m..]` with `members[m]` at `children[i]`.
    #[allow(clippy::too_many_arguments)]
    fn visit_seq<'e>(
        &self,
        children: &[NodeId],
        i: usize,
        members: &[usize],
        ops: &[SeqOp],
        m: usize,
        state: &mut EvalState<'e>,
        cont: &mut dyn FnMut(&Self, &mut EvalState<'e>) -> bool,
    ) -> bool
    where
        't: 'e,
    {
        self.visit_pattern(state, children[i], members[m], &mut |matcher, st| {
            if m + 1 == members.len() {
                return cont(matcher, st);
            }
            match ops[m] {
                SeqOp::Next => {
                    if i + 1 < children.len() {
                        matcher.visit_seq(children, i + 1, members, ops, m + 1, st, cont)
                    } else {
                        true
                    }
                }
                SeqOp::Following => {
                    for j in i + 1..children.len() {
                        if !matcher.visit_seq(children, j, members, ops, m + 1, st, cont) {
                            return false;
                        }
                    }
                    true
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use xmlmap_trees::tree;

    #[test]
    fn interning_is_dense_and_detects_repeats() {
        let p = parse("r[a(x, y), b(x)]").unwrap();
        let c = CompiledPattern::new(&p);
        assert_eq!(c.var_count(), 2);
        assert_eq!(c.var_id(&Var::new("x")), Some(0));
        assert_eq!(c.var_id(&Var::new("y")), Some(1));
        assert_eq!(c.var_id(&Var::new("z")), None);
        assert!(c.has_repeated_variable());

        let q = parse("r[a(u)[b(v)], //c(w)]").unwrap();
        let cq = CompiledPattern::new(&q);
        assert_eq!(cq.var_count(), 3);
        assert!(!cq.has_repeated_variable());
    }

    #[test]
    fn trail_restores_environment_between_branches() {
        // Two a-children: after failing to extend the first binding the
        // trail must fully unwind, or the second binding is rejected.
        let t = tree!("r" [ "a"("v" = "1") [ "c"("w" = "x") ],
                            "a"("v" = "2") [ "c"("w" = "y") ] ]);
        let p = parse("r[a(u)[c(q)]]").unwrap();
        let c = CompiledPattern::new(&p);
        let m = Matcher::new(&t, &c);
        assert_eq!(m.all_matches().len(), 2);
    }

    #[test]
    fn bitset_tables_span_many_words() {
        // > 64 pattern nodes forces multi-word rows.
        let mut p = parse("r").unwrap();
        for i in 0..70 {
            p = p.child(parse(&format!("a(k{i})")).unwrap());
        }
        let c = CompiledPattern::new(&p);
        assert!(c.nodes.len() > 64);
        let mut t = Tree::new("r");
        for _ in 0..70 {
            t.add_child(Tree::ROOT, "a", [("v", Value::str("q"))]);
        }
        let m = Matcher::new(&t, &c);
        assert!(m.feasible());
        assert!(m.matches_with(&Valuation::new()));
        // One child short: structurally infeasible.
        let mut t2 = Tree::new("r");
        for _ in 0..1 {
            t2.add_child(Tree::ROOT, "a", [("v", Value::str("q"))]);
        }
        let c1 = CompiledPattern::new(&parse("r[a(x), a(y)]").unwrap());
        let m2 = Matcher::new(&t2, &c1);
        assert!(m2.feasible()); // both obligations can use the same child
    }

    #[test]
    fn pruning_is_sound_for_repeated_variables() {
        // Structurally feasible but value-inconsistent: bits are set, the
        // valued search must still fail.
        let t = tree!("r" [ "a"("v" = "1"), "b"("w" = "2") ]);
        let p = parse("r[a(x), b(x)]").unwrap();
        let c = CompiledPattern::new(&p);
        let m = Matcher::new(&t, &c);
        assert!(m.feasible());
        assert!(!m.matches_with(&Valuation::new()));
    }

    #[test]
    fn seeded_probe_reuses_tables() {
        let t = tree!("r" [ "a"("v" = "1"), "a"("v" = "2"), "a"("v" = "3") ]);
        let p = parse("r/a(x)").unwrap();
        let c = CompiledPattern::new(&p);
        let m = Matcher::new(&t, &c);
        for (val, expect) in [("1", true), ("2", true), ("9", false)] {
            let seed: Valuation = [(Var::new("x"), Value::str(val))].into_iter().collect();
            assert_eq!(m.matches_with(&seed), expect, "seed x={val}");
        }
        // Seeds outside the pattern's variables pass through untouched.
        let seed: Valuation = [(Var::new("zz"), Value::str("7"))].into_iter().collect();
        let mut seen = Vec::new();
        m.for_each_match(&seed, &mut |v| {
            seen.push(v.clone());
            true
        });
        assert_eq!(seen.len(), 3);
        assert!(seen.iter().all(|v| v[&Var::new("zz")] == Value::str("7")));
    }
}
