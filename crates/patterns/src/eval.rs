//! Pattern semantics: `(T, s) ⊨ π(ā)` (paper §3).
//!
//! The evaluator enumerates the valuations `π(T) = { ā | T ⊨ π(ā) }`
//! (patterns are witnessed at the root) and supports matching under a
//! partial valuation — the existential check needed on the target side of
//! an std. Variable reuse inside a pattern imposes implicit equality, as in
//! the `SM(…, =)` classes.

use crate::ast::{ListItem, Pattern, SeqOp, Var};
use std::collections::BTreeMap;
use xmlmap_trees::{NodeId, Tree, Value};

/// A (partial) assignment of values to pattern variables.
pub type Valuation = BTreeMap<Var, Value>;

/// Evaluates `π(T)`: all valuations witnessing the pattern at the root.
///
/// Duplicates arising from different tree embeddings of the same valuation
/// are collapsed; the result is sorted (valuations are ordered maps).
pub fn all_matches(tree: &Tree, pattern: &Pattern) -> Vec<Valuation> {
    let mut out = std::collections::BTreeSet::new();
    visit_pattern(tree, Tree::ROOT, pattern, &Valuation::new(), &mut |env| {
        out.insert(env.clone());
        true
    });
    out.into_iter().collect()
}

/// Does some valuation extending `fixed` witness the pattern at the root?
pub fn matches_with(tree: &Tree, pattern: &Pattern, fixed: &Valuation) -> bool {
    !visit_pattern(tree, Tree::ROOT, pattern, fixed, &mut |_| false)
}

/// Does the tree match the pattern under any valuation (`π(T) ≠ ∅`)?
///
/// Uses the polynomial dynamic program of [`matches_structural`] when the
/// pattern has no repeated variables (then values never constrain the
/// match), falling back to the backtracking search otherwise.
pub fn matches(tree: &Tree, pattern: &Pattern) -> bool {
    match matches_structural(tree, pattern) {
        Some(ans) => ans,
        None => matches_with(tree, pattern, &Valuation::new()),
    }
}

/// Polynomial-time Boolean matching for patterns without repeated
/// variables — the PTIME combined-complexity bound of Prop 4.2 made
/// concrete. Returns `None` when the pattern reuses a variable (implicit
/// equality: values matter, so the DP does not apply).
///
/// The DP computes, bottom-up, for every (tree node, pattern node) pair
/// whether the pattern subtree matches there; sequence items are placed by
/// a left-to-right scan over the child list, descendant items via a
/// subtree-closure table. Worst-case `O(|T| · |π| · width)`, in contrast
/// to the backtracking evaluator, which can take exponential time on
/// failing multi-item patterns.
pub fn matches_structural(tree: &Tree, pattern: &Pattern) -> Option<bool> {
    if pattern.has_repeated_variable() {
        return None;
    }
    // Index pattern nodes (post-order via explicit stack).
    let mut nodes: Vec<&Pattern> = Vec::new();
    fn collect<'p>(p: &'p Pattern, out: &mut Vec<&'p Pattern>) {
        for item in &p.list {
            match item {
                ListItem::Seq { members, .. } => {
                    for m in members {
                        collect(m, out);
                    }
                }
                ListItem::Descendant(d) => collect(d, out),
            }
        }
        out.push(p); // children before parents
    }
    collect(pattern, &mut nodes);
    // Pointer → post-order index, built once: the DP inner loop calls this
    // per (tree node, pattern item), so a linear scan here would add an
    // extra |π| factor to the whole table computation.
    let index_map: std::collections::HashMap<*const Pattern, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, p)| (*p as *const Pattern, i))
        .collect();
    let index_of = |p: &Pattern| -> usize {
        *index_map.get(&(p as *const Pattern)).expect("collected")
    };

    let tree_order: Vec<NodeId> = tree.nodes().collect();
    let n_tree = tree.size();
    let n_pat = nodes.len();
    // ok[t][p]: pattern node p matches at tree node t.
    let mut ok = vec![vec![false; n_pat]; n_tree];
    // sub[t][p]: p matches somewhere in t's subtree (self included).
    let mut sub = vec![vec![false; n_pat]; n_tree];

    for &t in tree_order.iter().rev() {
        let ti = t.index();
        let children = tree.children(t);
        for (pi, p) in nodes.iter().enumerate() {
            if !p.label.accepts(tree.label(t)) {
                continue;
            }
            if !p.vars.is_empty() && tree.attrs(t).len() != p.vars.len() {
                continue;
            }
            let all_items = p.list.iter().all(|item| match item {
                ListItem::Descendant(d) => {
                    let di = index_of(d);
                    children.iter().any(|c| sub[c.index()][di])
                }
                ListItem::Seq { members, ops } => {
                    seq_places(children, members, ops, &ok, &index_of)
                }
            });
            if all_items {
                ok[ti][pi] = true;
            }
        }
        for pi in 0..n_pat {
            sub[ti][pi] =
                ok[ti][pi] || children.iter().any(|c| sub[c.index()][pi]);
        }
    }
    let root_pi = n_pat - 1; // the root is pushed last in post-order
    debug_assert!(std::ptr::eq(nodes[root_pi], pattern));
    Some(ok[Tree::ROOT.index()][root_pi])
}

/// Can the sequence be placed along `children`? Right-to-left DP:
/// `can[i]` = "members[m..] placeable with members[m] at position i",
/// rolled backwards over m — `→` forces adjacency, `→*` takes a suffix-OR.
/// `O(|members| · |children|)`.
fn seq_places(
    children: &[NodeId],
    members: &[Pattern],
    ops: &[crate::ast::SeqOp],
    ok: &[Vec<bool>],
    index_of: &impl Fn(&Pattern) -> usize,
) -> bool {
    if children.is_empty() {
        return false;
    }
    let width = children.len();
    let member_ok = |m: usize, i: usize| ok[children[i].index()][index_of(&members[m])];
    // Last member: placeable wherever it matches.
    let mut can: Vec<bool> = (0..width).map(|i| member_ok(members.len() - 1, i)).collect();
    for m in (0..members.len() - 1).rev() {
        let mut next = vec![false; width];
        match ops[m] {
            SeqOp::Next => {
                for (i, slot) in next.iter_mut().enumerate().take(width - 1) {
                    *slot = member_ok(m, i) && can[i + 1];
                }
            }
            SeqOp::Following => {
                // suffix[i] = ∃j ≥ i: can[j]
                let mut suffix = vec![false; width + 1];
                for i in (0..width).rev() {
                    suffix[i] = suffix[i + 1] || can[i];
                }
                for (i, slot) in next.iter_mut().enumerate().take(width - 1) {
                    *slot = member_ok(m, i) && suffix[i + 1];
                }
            }
        }
        can = next;
    }
    can.iter().any(|&b| b)
}

/// Like [`matches_with`], but anchored at an arbitrary node.
pub fn matches_at(tree: &Tree, node: NodeId, pattern: &Pattern, fixed: &Valuation) -> bool {
    !visit_pattern(tree, node, pattern, fixed, &mut |_| false)
}

/// Calls `found` on every valuation extending `seed` that witnesses the
/// pattern at the root; `found` returns `false` to stop the enumeration.
/// Returns `true` iff the enumeration was stopped early.
///
/// This is the building block for checking stds: the target side asks for
/// *some* match extending the source bindings that also satisfies the
/// target's equality/inequality conditions.
pub fn for_each_match(
    tree: &Tree,
    pattern: &Pattern,
    seed: &Valuation,
    found: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    !visit_pattern(tree, Tree::ROOT, pattern, seed, found)
}

/// Core visitor: calls `found` on every valuation extending `env` that
/// witnesses `pattern` at `node`. `found` returns `true` to continue the
/// enumeration; the visitor returns `false` iff the search was aborted.
fn visit_pattern(
    tree: &Tree,
    node: NodeId,
    pattern: &Pattern,
    env: &Valuation,
    found: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    // Label test.
    if !pattern.label.accepts(tree.label(node)) {
        return true;
    }
    // Arity test: a nonempty x̄ is bound to *the* attribute tuple of the
    // node, so lengths must agree. An empty tuple imposes no attribute
    // requirement — this is how the paper's value-free (SM°) patterns like
    // `r/a → r/a` read, and how the paper itself abbreviates nodes whose
    // attributes are irrelevant.
    let attrs: Vec<&Value> = tree.attr_values(node).collect();
    if !pattern.vars.is_empty() && attrs.len() != pattern.vars.len() {
        return true;
    }
    // Bind the variable tuple; reused variables must agree.
    let mut env = env.clone();
    for (var, value) in pattern.vars.iter().zip(&attrs) {
        match env.get(var) {
            Some(bound) if bound != *value => return true,
            Some(_) => {}
            None => {
                env.insert(var.clone(), (*value).clone());
            }
        }
    }
    visit_items(tree, node, &pattern.list, 0, &env, found)
}

/// Satisfies list items `items[k..]` in order, threading the valuation.
fn visit_items(
    tree: &Tree,
    node: NodeId,
    items: &[ListItem],
    k: usize,
    env: &Valuation,
    found: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    if k == items.len() {
        return found(env);
    }
    match &items[k] {
        ListItem::Descendant(sub) => {
            // Some proper descendant matches `sub`.
            for d in tree.descendants(node) {
                let alive = visit_pattern(tree, d, sub, env, &mut |env2| {
                    visit_items(tree, node, items, k + 1, env2, found)
                });
                if !alive {
                    return false;
                }
            }
            true
        }
        ListItem::Seq { members, ops } => {
            // The sequence is anchored at some child of `node`.
            let children = tree.children(node);
            for (i, _) in children.iter().enumerate() {
                let alive = visit_seq(tree, children, i, members, ops, 0, env, &mut |env2| {
                    visit_items(tree, node, items, k + 1, env2, found)
                });
                if !alive {
                    return false;
                }
            }
            true
        }
    }
}

/// Matches `members[m..]` starting with `members[m]` at `children[i]`,
/// respecting the horizontal operators.
#[allow(clippy::too_many_arguments)]
fn visit_seq(
    tree: &Tree,
    children: &[NodeId],
    i: usize,
    members: &[Pattern],
    ops: &[SeqOp],
    m: usize,
    env: &Valuation,
    found: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    visit_pattern(tree, children[i], &members[m], env, &mut |env2| {
        if m + 1 == members.len() {
            return found(env2);
        }
        match ops[m] {
            SeqOp::Next => {
                // The very next sibling.
                if i + 1 < children.len() {
                    visit_seq(tree, children, i + 1, members, ops, m + 1, env2, found)
                } else {
                    true
                }
            }
            SeqOp::Following => {
                // Some strictly-later sibling.
                for j in i + 1..children.len() {
                    if !visit_seq(tree, children, j, members, ops, m + 1, env2, found) {
                        return false;
                    }
                }
                true
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use xmlmap_trees::tree;

    fn val(pairs: &[(&str, &str)]) -> Valuation {
        pairs
            .iter()
            .map(|(k, v)| (Var::new(k), Value::str(v)))
            .collect()
    }

    /// The intro document: Ada teaches cs1 then cs2 in 2008, supervises Sue.
    fn intro_tree() -> Tree {
        tree! {
            "r" [
                "prof"("name" = "Ada") [
                    "teach" [ "year"("y" = "2008") [
                        "course"("cno" = "cs1"),
                        "course"("cno" = "cs2"),
                    ] ],
                    "supervise" [ "student"("sid" = "Sue"), "student"("sid" = "Bob") ],
                ],
            ]
        }
    }

    #[test]
    fn paper_pattern_pi1_enumerates_all_tuples() {
        // π₁ with both course variables: each (cn1, cn2) pair of child
        // courses of the same year, in any order (no horizontal constraint).
        let p = parse(
            "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]], supervise[student(s)]]]",
        )
        .unwrap();
        let ms = all_matches(&intro_tree(), &p);
        // cn1, cn2 ∈ {cs1, cs2} (4 combinations) × s ∈ {Sue, Bob}.
        assert_eq!(ms.len(), 8);
        assert!(ms.contains(&val(&[
            ("x", "Ada"),
            ("y", "2008"),
            ("cn1", "cs2"),
            ("cn2", "cs1"),
            ("s", "Sue")
        ])));
    }

    #[test]
    fn next_sibling_restricts_order() {
        let p = parse("r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]")
            .unwrap();
        let ms = all_matches(&intro_tree(), &p);
        // Only cs1 → cs2 in document order; two students.
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_eq!(m[&Var::new("cn1")], Value::str("cs1"));
            assert_eq!(m[&Var::new("cn2")], Value::str("cs2"));
        }
    }

    #[test]
    fn following_sibling_vs_next_sibling() {
        let t = tree!("r" [ "a"("v" = "1"), "b"("v" = "2"), "a"("v" = "3") ]);
        let next = parse("r[a(x) -> a(y)]").unwrap();
        assert!(all_matches(&t, &next).is_empty()); // a's are not adjacent
        let following = parse("r[a(x) ->* a(y)]").unwrap();
        let ms = all_matches(&t, &following);
        assert_eq!(ms, vec![val(&[("x", "1"), ("y", "3")])]);
        // Following-sibling includes the immediate next sibling.
        let ab = parse("r[a(x) ->* b(y)]").unwrap();
        assert_eq!(all_matches(&t, &ab), vec![val(&[("x", "1"), ("y", "2")])]);
    }

    #[test]
    fn descendant_matches_any_depth() {
        let p = parse("r//course(c)").unwrap();
        let ms = all_matches(&intro_tree(), &p);
        assert_eq!(ms.len(), 2);
        // Descendant is strict: r itself is not its own descendant.
        let strict = parse("r[//_]").unwrap();
        let single = tree!("r");
        assert!(!matches(&single, &strict));
        assert!(matches(&intro_tree(), &strict));
    }

    #[test]
    fn wildcard_and_arity() {
        // _(v) matches any node with exactly one attribute.
        let p = parse("r//_(v)").unwrap();
        let ms = all_matches(&intro_tree(), &p);
        // prof, year, 2 courses, 2 students have exactly one attribute.
        let values: Vec<String> = ms.iter().map(|m| m[&Var::new("v")].to_string()).collect();
        assert_eq!(ms.len(), 6, "{values:?}");
        // Arity mismatch: course(x, y) never matches one-attribute nodes.
        let bad = parse("r//course(x, y)").unwrap();
        assert!(all_matches(&intro_tree(), &bad).is_empty());
        // A bare node test (empty tuple) imposes no attribute requirement.
        let bare = parse("r//course").unwrap();
        assert!(matches(&intro_tree(), &bare));
    }

    #[test]
    fn variable_reuse_is_implicit_equality() {
        // Same course number twice — never true on distinct-value courses.
        let twice = parse("r//year(y)[course(c), course(c)]").unwrap();
        let ms = all_matches(&intro_tree(), &twice);
        // c can match the same node twice: course(c), course(c) allows both
        // conjuncts to map to one node — equality satisfied.
        assert_eq!(ms.len(), 2);

        let t = tree!("r" [ "a"("v" = "7"), "b"("w" = "7") ]);
        let join = parse("r[a(x), b(x)]").unwrap();
        assert_eq!(all_matches(&t, &join), vec![val(&[("x", "7")])]);
        let t2 = tree!("r" [ "a"("v" = "7"), "b"("w" = "8") ]);
        assert!(all_matches(&t2, &join).is_empty());
    }

    #[test]
    fn partial_valuation_seeds_the_search() {
        let p = parse("r//student(s)").unwrap();
        let t = intro_tree();
        assert!(matches_with(&t, &p, &val(&[("s", "Sue")])));
        assert!(matches_with(&t, &p, &val(&[("s", "Bob")])));
        assert!(!matches_with(&t, &p, &val(&[("s", "Eve")])));
        // Irrelevant fixed variables don't interfere.
        assert!(matches_with(&t, &p, &val(&[("unused", "1")])));
    }

    #[test]
    fn matches_at_inner_node() {
        let t = intro_tree();
        let prof = t.children(Tree::ROOT)[0];
        let p = parse("prof(x)[supervise[student(s)]]").unwrap();
        assert!(matches_at(&t, prof, &p, &Valuation::new()));
        assert!(!matches_at(&t, Tree::ROOT, &p, &Valuation::new()));
    }

    #[test]
    fn root_label_mismatch() {
        let p = parse("q[a]").unwrap();
        assert!(!matches(&intro_tree(), &p));
    }

    #[test]
    fn three_member_sequence() {
        let t = tree!("r" [ "a"("v" = "1"), "a"("v" = "2"), "b"("v" = "3"), "a"("v" = "4") ]);
        let p = parse("r[a(x) ->* a(y) -> b(z)]").unwrap();
        let ms = all_matches(&t, &p);
        assert_eq!(ms, vec![val(&[("x", "1"), ("y", "2"), ("z", "3")])]);
    }

    #[test]
    fn structural_dp_agrees_and_scales() {
        // A failing pattern with many independent descendant items: the
        // backtracking evaluator would enumerate the cross product of the
        // //a matches before failing; the DP answers directly.
        let mut t = Tree::new("r");
        for i in 0..60 {
            t.add_child(Tree::ROOT, "a", [("v", Value::int(i))]);
        }
        let mut p = parse("r").unwrap();
        for _ in 0..8 {
            p = p.descendant(parse("a(x1)").unwrap());
        }
        // rename vars to keep the pattern reuse-free
        fn rename(p: &mut crate::ast::Pattern, k: &mut usize) {
            for v in p.vars.iter_mut() {
                *v = Var::new(format!("u{k}"));
                *k += 1;
            }
            for item in p.list.iter_mut() {
                match item {
                    crate::ast::ListItem::Seq { members, .. } => {
                        for m in members {
                            rename(m, k);
                        }
                    }
                    crate::ast::ListItem::Descendant(d) => rename(d, k),
                }
            }
        }
        let mut k = 0;
        rename(&mut p, &mut k);
        p = p.descendant(parse("zz").unwrap()); // make it fail
        // Must answer (false) immediately via the DP.
        assert_eq!(matches_structural(&t, &p), Some(false));
        assert!(!matches(&t, &p));

        // Positive case with sequences.
        let t2 = tree!("r" [ "a"("v" = "1"), "b"("v" = "2"), "a"("v" = "3") ]);
        let q = parse("r[a(x) ->* a(y)]").unwrap();
        assert_eq!(matches_structural(&t2, &q), Some(true));
        // Reuse disables the DP.
        let reuse = parse("r[a(x), a(x)]").unwrap();
        assert_eq!(matches_structural(&t2, &reuse), None);
    }

    #[test]
    fn multiple_list_items_share_variables() {
        let t = tree! {
            "r" [
                "a"("v" = "1") [ "c"("w" = "k") ],
                "b"("v" = "2") [ "c"("w" = "k") ],
            ]
        };
        let p = parse("r[a(x)[c(u)], b(y)[c(u)]]").unwrap();
        assert_eq!(
            all_matches(&t, &p),
            vec![val(&[("x", "1"), ("y", "2"), ("u", "k")])]
        );
    }
}
