//! Pattern semantics: `(T, s) ⊨ π(ā)` (paper §3).
//!
//! The evaluator enumerates the valuations `π(T) = { ā | T ⊨ π(ā) }`
//! (patterns are witnessed at the root) and supports matching under a
//! partial valuation — the existential check needed on the target side of
//! an std. Variable reuse inside a pattern imposes implicit equality, as in
//! the `SM(…, =)` classes.
//!
//! The functions here are thin wrappers: they compile the pattern and
//! prepare it against the tree via [`crate::compiled`] (interned
//! variables, trail-based backtracking, bitset feasibility tables), then
//! run one query. Callers issuing many probes against the same
//! (tree, pattern) pair — the per-firing existential checks of an std, for
//! instance — should build a [`CompiledPattern`] and [`Matcher`] once and
//! reuse them; each wrapper call below rebuilds the tables. The naive
//! evaluator these wrappers used to contain lives on in
//! [`crate::reference`] as the differential-testing oracle.

use crate::ast::{Pattern, Var};
use crate::compiled::{CompiledPattern, Matcher};
use std::collections::BTreeMap;
use xmlmap_trees::{NodeId, Tree, Value};

/// A (partial) assignment of values to pattern variables.
pub type Valuation = BTreeMap<Var, Value>;

/// Evaluates `π(T)`: all valuations witnessing the pattern at the root.
///
/// Duplicates arising from different tree embeddings of the same valuation
/// are collapsed; the result is sorted (valuations are ordered maps).
pub fn all_matches(tree: &Tree, pattern: &Pattern) -> Vec<Valuation> {
    let compiled = CompiledPattern::new(pattern);
    Matcher::new(tree, &compiled).all_matches()
}

/// Does some valuation extending `fixed` witness the pattern at the root?
pub fn matches_with(tree: &Tree, pattern: &Pattern, fixed: &Valuation) -> bool {
    let compiled = CompiledPattern::new(pattern);
    Matcher::new(tree, &compiled).matches_with(fixed)
}

/// Does the tree match the pattern under any valuation (`π(T) ≠ ∅`)?
///
/// The bitset feasibility tables answer this outright for patterns without
/// repeated variables (values never constrain such a match); with repeats
/// they still prune the backtracking search down to the value-consistent
/// embeddings.
pub fn matches(tree: &Tree, pattern: &Pattern) -> bool {
    let compiled = CompiledPattern::new(pattern);
    let matcher = Matcher::new(tree, &compiled);
    if !compiled.has_repeated_variable() {
        return matcher.feasible();
    }
    matcher.matches_with(&Valuation::new())
}

/// Polynomial-time Boolean matching for patterns without repeated
/// variables — the PTIME combined-complexity bound of Prop 4.2 made
/// concrete. Returns `None` when the pattern reuses a variable (implicit
/// equality: values matter, so the structural answer is only an
/// over-approximation).
///
/// The tables flatten the old per-pair boolean matrices into `u64` bitset
/// rows — one bit per pattern node — with a word-parallel subtree
/// closure: `O(|T| · |π| · width)` overall. See [`crate::compiled`].
pub fn matches_structural(tree: &Tree, pattern: &Pattern) -> Option<bool> {
    let compiled = CompiledPattern::new(pattern);
    if compiled.has_repeated_variable() {
        return None;
    }
    Some(Matcher::new(tree, &compiled).feasible())
}

/// Like [`matches_with`], but anchored at an arbitrary node.
pub fn matches_at(tree: &Tree, node: NodeId, pattern: &Pattern, fixed: &Valuation) -> bool {
    let compiled = CompiledPattern::new(pattern);
    Matcher::new(tree, &compiled).matches_at(node, fixed)
}

/// Calls `found` on every valuation extending `seed` that witnesses the
/// pattern at the root; `found` returns `false` to stop the enumeration.
/// Returns `true` iff the enumeration was stopped early.
///
/// This is the building block for checking stds: the target side asks for
/// *some* match extending the source bindings that also satisfies the
/// target's equality/inequality conditions.
pub fn for_each_match(
    tree: &Tree,
    pattern: &Pattern,
    seed: &Valuation,
    found: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    let compiled = CompiledPattern::new(pattern);
    Matcher::new(tree, &compiled).for_each_match(seed, found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use xmlmap_trees::tree;

    fn val(pairs: &[(&str, &str)]) -> Valuation {
        pairs
            .iter()
            .map(|(k, v)| (Var::new(k), Value::str(v)))
            .collect()
    }

    /// The intro document: Ada teaches cs1 then cs2 in 2008, supervises Sue.
    fn intro_tree() -> Tree {
        tree! {
            "r" [
                "prof"("name" = "Ada") [
                    "teach" [ "year"("y" = "2008") [
                        "course"("cno" = "cs1"),
                        "course"("cno" = "cs2"),
                    ] ],
                    "supervise" [ "student"("sid" = "Sue"), "student"("sid" = "Bob") ],
                ],
            ]
        }
    }

    #[test]
    fn paper_pattern_pi1_enumerates_all_tuples() {
        // π₁ with both course variables: each (cn1, cn2) pair of child
        // courses of the same year, in any order (no horizontal constraint).
        let p =
            parse("r[prof(x)[teach[year(y)[course(cn1), course(cn2)]], supervise[student(s)]]]")
                .unwrap();
        let ms = all_matches(&intro_tree(), &p);
        // cn1, cn2 ∈ {cs1, cs2} (4 combinations) × s ∈ {Sue, Bob}.
        assert_eq!(ms.len(), 8);
        assert!(ms.contains(&val(&[
            ("x", "Ada"),
            ("y", "2008"),
            ("cn1", "cs2"),
            ("cn2", "cs1"),
            ("s", "Sue")
        ])));
    }

    #[test]
    fn next_sibling_restricts_order() {
        let p =
            parse("r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]")
                .unwrap();
        let ms = all_matches(&intro_tree(), &p);
        // Only cs1 → cs2 in document order; two students.
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_eq!(m[&Var::new("cn1")], Value::str("cs1"));
            assert_eq!(m[&Var::new("cn2")], Value::str("cs2"));
        }
    }

    #[test]
    fn following_sibling_vs_next_sibling() {
        let t = tree!("r" [ "a"("v" = "1"), "b"("v" = "2"), "a"("v" = "3") ]);
        let next = parse("r[a(x) -> a(y)]").unwrap();
        assert!(all_matches(&t, &next).is_empty()); // a's are not adjacent
        let following = parse("r[a(x) ->* a(y)]").unwrap();
        let ms = all_matches(&t, &following);
        assert_eq!(ms, vec![val(&[("x", "1"), ("y", "3")])]);
        // Following-sibling includes the immediate next sibling.
        let ab = parse("r[a(x) ->* b(y)]").unwrap();
        assert_eq!(all_matches(&t, &ab), vec![val(&[("x", "1"), ("y", "2")])]);
    }

    #[test]
    fn descendant_matches_any_depth() {
        let p = parse("r//course(c)").unwrap();
        let ms = all_matches(&intro_tree(), &p);
        assert_eq!(ms.len(), 2);
        // Descendant is strict: r itself is not its own descendant.
        let strict = parse("r[//_]").unwrap();
        let single = tree!("r");
        assert!(!matches(&single, &strict));
        assert!(matches(&intro_tree(), &strict));
    }

    #[test]
    fn wildcard_and_arity() {
        // _(v) matches any node with exactly one attribute.
        let p = parse("r//_(v)").unwrap();
        let ms = all_matches(&intro_tree(), &p);
        // prof, year, 2 courses, 2 students have exactly one attribute.
        let values: Vec<String> = ms.iter().map(|m| m[&Var::new("v")].to_string()).collect();
        assert_eq!(ms.len(), 6, "{values:?}");
        // Arity mismatch: course(x, y) never matches one-attribute nodes.
        let bad = parse("r//course(x, y)").unwrap();
        assert!(all_matches(&intro_tree(), &bad).is_empty());
        // A bare node test (empty tuple) imposes no attribute requirement.
        let bare = parse("r//course").unwrap();
        assert!(matches(&intro_tree(), &bare));
    }

    #[test]
    fn variable_reuse_is_implicit_equality() {
        // Same course number twice — never true on distinct-value courses.
        let twice = parse("r//year(y)[course(c), course(c)]").unwrap();
        let ms = all_matches(&intro_tree(), &twice);
        // c can match the same node twice: course(c), course(c) allows both
        // conjuncts to map to one node — equality satisfied.
        assert_eq!(ms.len(), 2);

        let t = tree!("r" [ "a"("v" = "7"), "b"("w" = "7") ]);
        let join = parse("r[a(x), b(x)]").unwrap();
        assert_eq!(all_matches(&t, &join), vec![val(&[("x", "7")])]);
        let t2 = tree!("r" [ "a"("v" = "7"), "b"("w" = "8") ]);
        assert!(all_matches(&t2, &join).is_empty());
    }

    #[test]
    fn partial_valuation_seeds_the_search() {
        let p = parse("r//student(s)").unwrap();
        let t = intro_tree();
        assert!(matches_with(&t, &p, &val(&[("s", "Sue")])));
        assert!(matches_with(&t, &p, &val(&[("s", "Bob")])));
        assert!(!matches_with(&t, &p, &val(&[("s", "Eve")])));
        // Irrelevant fixed variables don't interfere.
        assert!(matches_with(&t, &p, &val(&[("unused", "1")])));
    }

    #[test]
    fn matches_at_inner_node() {
        let t = intro_tree();
        let prof = t.children(Tree::ROOT)[0];
        let p = parse("prof(x)[supervise[student(s)]]").unwrap();
        assert!(matches_at(&t, prof, &p, &Valuation::new()));
        assert!(!matches_at(&t, Tree::ROOT, &p, &Valuation::new()));
    }

    #[test]
    fn root_label_mismatch() {
        let p = parse("q[a]").unwrap();
        assert!(!matches(&intro_tree(), &p));
    }

    #[test]
    fn three_member_sequence() {
        let t = tree!("r" [ "a"("v" = "1"), "a"("v" = "2"), "b"("v" = "3"), "a"("v" = "4") ]);
        let p = parse("r[a(x) ->* a(y) -> b(z)]").unwrap();
        let ms = all_matches(&t, &p);
        assert_eq!(ms, vec![val(&[("x", "1"), ("y", "2"), ("z", "3")])]);
    }

    #[test]
    fn structural_dp_agrees_and_scales() {
        // A failing pattern with many independent descendant items: the
        // backtracking evaluator would enumerate the cross product of the
        // //a matches before failing; the DP answers directly.
        let mut t = Tree::new("r");
        for i in 0..60 {
            t.add_child(Tree::ROOT, "a", [("v", Value::int(i))]);
        }
        let mut p = parse("r").unwrap();
        for _ in 0..8 {
            p = p.descendant(parse("a(x1)").unwrap());
        }
        // rename vars to keep the pattern reuse-free
        fn rename(p: &mut crate::ast::Pattern, k: &mut usize) {
            for v in p.vars.iter_mut() {
                *v = Var::new(format!("u{k}"));
                *k += 1;
            }
            for item in p.list.iter_mut() {
                match item {
                    crate::ast::ListItem::Seq { members, .. } => {
                        for m in members {
                            rename(m, k);
                        }
                    }
                    crate::ast::ListItem::Descendant(d) => rename(d, k),
                }
            }
        }
        let mut k = 0;
        rename(&mut p, &mut k);
        p = p.descendant(parse("zz").unwrap()); // make it fail
                                                // Must answer (false) immediately via the DP.
        assert_eq!(matches_structural(&t, &p), Some(false));
        assert!(!matches(&t, &p));

        // Positive case with sequences.
        let t2 = tree!("r" [ "a"("v" = "1"), "b"("v" = "2"), "a"("v" = "3") ]);
        let q = parse("r[a(x) ->* a(y)]").unwrap();
        assert_eq!(matches_structural(&t2, &q), Some(true));
        // Reuse disables the DP.
        let reuse = parse("r[a(x), a(x)]").unwrap();
        assert_eq!(matches_structural(&t2, &reuse), None);
    }

    #[test]
    fn multiple_list_items_share_variables() {
        let t = tree! {
            "r" [
                "a"("v" = "1") [ "c"("w" = "k") ],
                "b"("v" = "2") [ "c"("w" = "k") ],
            ]
        };
        let p = parse("r[a(x)[c(u)], b(y)[c(u)]]").unwrap();
        assert_eq!(
            all_matches(&t, &p),
            vec![val(&[("x", "1"), ("y", "2"), ("u", "k")])]
        );
    }
}
