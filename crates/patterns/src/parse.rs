//! Textual pattern syntax.
//!
//! Mirrors how the paper writes patterns:
//!
//! ```text
//! r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]],
//!           supervise[student(s)]]]
//! ```
//!
//! Grammar:
//!
//! ```text
//! pattern := label vars? list?
//! label   := name | '_'
//! vars    := '(' name (',' name)* ')'
//! list    := '[' item (',' item)* ']'
//! item    := '//' pattern | seq
//! seq     := pattern (('->*' | '->') pattern)*
//! ```
//!
//! Abbreviations from the paper are accepted too: `a/b` for `a[b]` and
//! `a//b` for `a[//b]` (at any depth, e.g. `r/a(x)/b(y)`).

use crate::ast::{LabelTest, ListItem, Pattern, SeqOp, Var};
use std::fmt;
use xmlmap_trees::Name;

/// Errors raised by the pattern parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for PatternParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, PatternParseError> {
        Err(PatternParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.input.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn name(&mut self) -> Result<Name, PatternParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(Name::new(
            std::str::from_utf8(&self.input[start..self.pos]).unwrap(),
        ))
    }

    fn pattern(&mut self) -> Result<Pattern, PatternParseError> {
        self.skip_ws();
        // Label test: `_` alone is the wildcard; `_` may also start a name,
        // so peek the following byte.
        let label = if self.peek() == Some(b'_')
            && !self
                .input
                .get(self.pos + 1)
                .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.'))
        {
            self.pos += 1;
            LabelTest::Wildcard
        } else {
            LabelTest::Label(self.name()?)
        };

        // Optional variable tuple.
        let mut vars: Vec<Var> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            self.skip_ws();
            if self.peek() == Some(b')') {
                self.pos += 1;
            } else {
                loop {
                    self.skip_ws();
                    vars.push(self.name()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return self.err("expected ',' or ')' in variable tuple"),
                    }
                }
            }
        }

        let mut pat = Pattern {
            label,
            vars,
            list: Vec::new(),
        };

        // Optional list, or the `/`, `//` path abbreviations.
        self.skip_ws();
        if self.starts_with("//") {
            self.pos += 2;
            let sub = self.pattern()?;
            pat.list.push(ListItem::Descendant(sub));
        } else if self.peek() == Some(b'/') {
            self.pos += 1;
            let sub = self.pattern()?;
            pat.list.push(ListItem::Seq {
                members: vec![sub],
                ops: Vec::new(),
            });
        } else if self.peek() == Some(b'[') {
            self.pos += 1;
            loop {
                let item = self.item()?;
                pat.list.push(item);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return self.err("expected ',' or ']' in list"),
                }
            }
        }
        Ok(pat)
    }

    fn item(&mut self) -> Result<ListItem, PatternParseError> {
        self.skip_ws();
        if self.starts_with("//") {
            self.pos += 2;
            return Ok(ListItem::Descendant(self.pattern()?));
        }
        let first = self.pattern()?;
        let mut members = vec![first];
        let mut ops = Vec::new();
        loop {
            self.skip_ws();
            if self.starts_with("->*") {
                self.pos += 3;
                ops.push(SeqOp::Following);
            } else if self.starts_with("->") {
                self.pos += 2;
                ops.push(SeqOp::Next);
            } else {
                break;
            }
            members.push(self.pattern()?);
        }
        Ok(ListItem::Seq { members, ops })
    }
}

/// Parses the textual pattern syntax described at the module level.
pub fn parse(input: &str) -> Result<Pattern, PatternParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    let pat = p.pattern()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return p.err("trailing input after pattern");
    }
    Ok(pat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Pattern {
        parse(s).unwrap()
    }

    #[test]
    fn parses_paper_pi3() {
        let pat =
            p("r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]");
        let vars: Vec<String> = pat.variables().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, ["x", "y", "cn1", "cn2", "s"]);
        assert!(pat.uses_next_sibling());
        assert_eq!(pat.size(), 8);
    }

    #[test]
    fn parses_paper_pi4() {
        // Target side (4): following-sibling between the two courses.
        let pat = p(
            "r[course(cn1, y)[taughtby(x)] ->* course(cn2, y)[taughtby(x)], \
             student(s)[supervisor(x)]]",
        );
        assert!(pat.uses_following_sibling());
        assert!(pat.has_repeated_variable()); // x and y reused
    }

    #[test]
    fn display_parse_round_trip() {
        for s in [
            "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]",
            "r[a(x) ->* b(y) -> c(z)]",
            "r[//a(x), b]",
            "_[_(x)]",
            "r",
            "a(x, y, z)",
            "r[//_[a -> b]]",
        ] {
            let pat = p(s);
            assert_eq!(p(&pat.to_string()), pat, "round-tripping {s}");
        }
    }

    #[test]
    fn path_abbreviations() {
        assert_eq!(p("r/a(x)"), p("r[a(x)]"));
        assert_eq!(p("r//a(x)"), p("r[//a(x)]"));
        assert_eq!(p("r/a(x)/b(y)"), p("r[a(x)[b(y)]]"));
        assert_eq!(p("r/_//b"), p("r[_[//b]]"));
    }

    #[test]
    fn wildcard_vs_underscore_names() {
        assert_eq!(p("_").label, LabelTest::Wildcard);
        assert_eq!(p("_x").label, LabelTest::Label(Name::new("_x")));
    }

    #[test]
    fn empty_var_tuple() {
        let pat = p("a()");
        assert!(pat.vars.is_empty());
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("r[").is_err());
        assert!(parse("r[a,]").is_err());
        assert!(parse("r](").is_err());
        assert!(parse("r[a] trailing").is_err());
        assert!(parse("r(x").is_err());
        assert!(parse("r[a ->]").is_err());
    }

    #[test]
    fn descendant_inside_sequences_is_rejected() {
        // `a -> //b` is not grammatical: sequences contain patterns only.
        assert!(parse("r[a -> //b]").is_err());
    }
}
