//! Tree patterns — grammar (2) of the paper:
//!
//! ```text
//! π := ℓ(x̄)[λ]                        patterns
//! λ := ε | μ | //π | λ, λ             lists
//! μ := π | π → μ | π →* μ             sequences
//! ```
//!
//! where ℓ is a label or the wildcard `_` and x̄ is a tuple of variables for
//! the node's attributes. Fully-specified patterns (grammar (5), used by
//! the tractable fragments) additionally ban wildcard, descendant `//` and
//! the horizontal operators.

use std::collections::BTreeSet;
use std::fmt;
use xmlmap_trees::Name;

/// A variable standing for an attribute value.
pub type Var = Name;

/// The label test at a pattern node: a concrete label or the wildcard `_`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LabelTest {
    /// Must be labelled with this element type.
    Label(Name),
    /// Any element type (`_`).
    Wildcard,
}

impl LabelTest {
    /// Does the test accept `label`?
    pub fn accepts(&self, label: &Name) -> bool {
        match self {
            LabelTest::Label(l) => l == label,
            LabelTest::Wildcard => true,
        }
    }
}

/// The horizontal operator between consecutive members of a sequence `μ`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SeqOp {
    /// `→` — the very next sibling.
    Next,
    /// `→*` — some following sibling (strictly to the right).
    Following,
}

/// An item of a list `λ`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ListItem {
    /// A sequence `μ = π₁ op₁ π₂ op₂ …` anchored at some child.
    /// `ops.len() == members.len() - 1`.
    Seq {
        /// The member patterns, left to right.
        members: Vec<Pattern>,
        /// The operator between member `i` and member `i+1`.
        ops: Vec<SeqOp>,
    },
    /// `//π` — π matches at some proper descendant.
    Descendant(Pattern),
}

/// A pattern node `π = ℓ(x̄)[λ]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Pattern {
    /// The label test ℓ (or `_`).
    pub label: LabelTest,
    /// The variable tuple x̄; its length must equal the matched node's
    /// attribute count (the paper's semantics binds x̄ to *the* tuple of
    /// attributes of the node).
    pub vars: Vec<Var>,
    /// The list λ of child/descendant requirements.
    pub list: Vec<ListItem>,
}

impl Pattern {
    /// A leaf pattern `ℓ(x̄)` (empty list).
    pub fn leaf<V, I>(label: impl Into<Name>, vars: I) -> Pattern
    where
        V: Into<Var>,
        I: IntoIterator<Item = V>,
    {
        Pattern {
            label: LabelTest::Label(label.into()),
            vars: vars.into_iter().map(Into::into).collect(),
            list: Vec::new(),
        }
    }

    /// A leaf wildcard pattern `_(x̄)`.
    pub fn wildcard<V, I>(vars: I) -> Pattern
    where
        V: Into<Var>,
        I: IntoIterator<Item = V>,
    {
        Pattern {
            label: LabelTest::Wildcard,
            vars: vars.into_iter().map(Into::into).collect(),
            list: Vec::new(),
        }
    }

    /// Appends a single-pattern child item (builder style).
    pub fn child(mut self, child: Pattern) -> Pattern {
        self.list.push(ListItem::Seq {
            members: vec![child],
            ops: Vec::new(),
        });
        self
    }

    /// Appends a `//π` item (builder style).
    pub fn descendant(mut self, desc: Pattern) -> Pattern {
        self.list.push(ListItem::Descendant(desc));
        self
    }

    /// Appends a sequence item (builder style).
    pub fn seq(mut self, members: Vec<Pattern>, ops: Vec<SeqOp>) -> Pattern {
        assert_eq!(members.len(), ops.len() + 1, "sequence arity mismatch");
        self.list.push(ListItem::Seq { members, ops });
        self
    }

    /// All variables, in left-to-right order of first occurrence.
    pub fn variables(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        self.collect_vars(&mut seen, &mut out);
        out
    }

    fn collect_vars(&self, seen: &mut BTreeSet<Var>, out: &mut Vec<Var>) {
        for v in &self.vars {
            if seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
        for item in &self.list {
            match item {
                ListItem::Seq { members, .. } => {
                    for m in members {
                        m.collect_vars(seen, out);
                    }
                }
                ListItem::Descendant(p) => p.collect_vars(seen, out),
            }
        }
    }

    /// Does any variable occur more than once? (Implicit equality; stds of
    /// Definition 3.1 require source variables to occur exactly once unless
    /// the signature includes `=`.)
    pub fn has_repeated_variable(&self) -> bool {
        let mut seen = BTreeSet::new();
        !self.each_var_occurrence(&mut |v| seen.insert(v.clone()))
    }

    /// Calls `f` on every variable occurrence; stops (returning false) when
    /// `f` returns false.
    fn each_var_occurrence(&self, f: &mut impl FnMut(&Var) -> bool) -> bool {
        for v in &self.vars {
            if !f(v) {
                return false;
            }
        }
        for item in &self.list {
            match item {
                ListItem::Seq { members, .. } => {
                    for m in members {
                        if !m.each_var_occurrence(f) {
                            return false;
                        }
                    }
                }
                ListItem::Descendant(p) => {
                    if !p.each_var_occurrence(f) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Does the pattern use the wildcard label test anywhere?
    pub fn uses_wildcard(&self) -> bool {
        matches!(self.label, LabelTest::Wildcard)
            || self.list.iter().any(|item| match item {
                ListItem::Seq { members, .. } => members.iter().any(Pattern::uses_wildcard),
                ListItem::Descendant(p) => p.uses_wildcard(),
            })
    }

    /// Does the pattern use `//` anywhere?
    pub fn uses_descendant(&self) -> bool {
        self.list.iter().any(|item| match item {
            ListItem::Seq { members, .. } => members.iter().any(Pattern::uses_descendant),
            ListItem::Descendant(_) => true,
        })
    }

    /// Does the pattern use `→` anywhere?
    pub fn uses_next_sibling(&self) -> bool {
        self.list.iter().any(|item| match item {
            ListItem::Seq { members, ops } => {
                ops.contains(&SeqOp::Next) || members.iter().any(Pattern::uses_next_sibling)
            }
            ListItem::Descendant(p) => p.uses_next_sibling(),
        })
    }

    /// Does the pattern use `→*` anywhere?
    pub fn uses_following_sibling(&self) -> bool {
        self.list.iter().any(|item| match item {
            ListItem::Seq { members, ops } => {
                ops.contains(&SeqOp::Following)
                    || members.iter().any(Pattern::uses_following_sibling)
            }
            ListItem::Descendant(p) => p.uses_following_sibling(),
        })
    }

    /// The set of concrete labels the pattern can test, or `None` if any
    /// node uses the wildcard (in which case the pattern can match nodes
    /// of every label and no finite footprint exists). A match valuation
    /// can only involve tree nodes whose labels are in this set, so an
    /// edit whose region is disjoint from the footprint cannot create or
    /// destroy matches of a purely downward pattern — the basis of the
    /// delta-chase refire analysis.
    pub fn label_footprint(&self) -> Option<BTreeSet<Name>> {
        fn go(p: &Pattern, out: &mut BTreeSet<Name>) -> bool {
            match &p.label {
                LabelTest::Wildcard => return false,
                LabelTest::Label(l) => {
                    out.insert(l.clone());
                }
            }
            p.list.iter().all(|item| match item {
                ListItem::Seq { members, .. } => members.iter().all(|m| go(m, out)),
                ListItem::Descendant(d) => go(d, out),
            })
        }
        let mut out = BTreeSet::new();
        go(self, &mut out).then_some(out)
    }

    /// Is this pattern *fully specified* (grammar (5)): no wildcard, no
    /// descendant, no horizontal operators?
    pub fn is_fully_specified(&self) -> bool {
        !self.uses_wildcard()
            && !self.uses_descendant()
            && !self.uses_next_sibling()
            && !self.uses_following_sibling()
    }

    /// Number of pattern nodes.
    pub fn size(&self) -> usize {
        1 + self
            .list
            .iter()
            .map(|item| match item {
                ListItem::Seq { members, .. } => members.iter().map(Pattern::size).sum(),
                ListItem::Descendant(p) => p.size(),
            })
            .sum::<usize>()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            LabelTest::Label(l) => write!(f, "{l}")?,
            LabelTest::Wildcard => write!(f, "_")?,
        }
        if !self.vars.is_empty() {
            write!(f, "(")?;
            for (i, v) in self.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        if !self.list.is_empty() {
            write!(f, "[")?;
            for (i, item) in self.list.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match item {
                    ListItem::Descendant(p) => write!(f, "//{p}")?,
                    ListItem::Seq { members, ops } => {
                        write!(f, "{}", members[0])?;
                        for (m, op) in members[1..].iter().zip(ops) {
                            match op {
                                SeqOp::Next => write!(f, " -> {m}")?,
                                SeqOp::Following => write!(f, " ->* {m}")?,
                            }
                        }
                    }
                }
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// π₃ from the paper, eq. (3):
    /// r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]
    pub(crate) fn pi3() -> Pattern {
        Pattern::leaf("r", Vec::<Var>::new()).child(
            Pattern::leaf("prof", ["x"])
                .child(Pattern::leaf("teach", Vec::<Var>::new()).child(
                    Pattern::leaf("year", ["y"]).seq(
                        vec![
                            Pattern::leaf("course", ["cn1"]),
                            Pattern::leaf("course", ["cn2"]),
                        ],
                        vec![SeqOp::Next],
                    ),
                ))
                .child(
                    Pattern::leaf("supervise", Vec::<Var>::new())
                        .child(Pattern::leaf("student", ["s"])),
                ),
        )
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(
            pi3().to_string(),
            "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]"
        );
    }

    #[test]
    fn variable_collection_in_order() {
        let vars: Vec<String> = pi3().variables().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, ["x", "y", "cn1", "cn2", "s"]);
        assert!(!pi3().has_repeated_variable());

        let reuse = Pattern::leaf("r", Vec::<Var>::new())
            .child(Pattern::leaf("a", ["x"]))
            .child(Pattern::leaf("b", ["x"]));
        assert!(reuse.has_repeated_variable());
        assert_eq!(reuse.variables().len(), 1);
    }

    #[test]
    fn feature_detection() {
        let p = pi3();
        assert!(p.uses_next_sibling());
        assert!(!p.uses_following_sibling());
        assert!(!p.uses_descendant());
        assert!(!p.uses_wildcard());
        assert!(!p.is_fully_specified()); // uses →

        let fs = Pattern::leaf("r", Vec::<Var>::new()).child(Pattern::leaf("a", ["x"]));
        assert!(fs.is_fully_specified());

        let desc = Pattern::leaf("r", Vec::<Var>::new()).descendant(Pattern::wildcard(["z"]));
        assert!(desc.uses_descendant());
        assert!(desc.uses_wildcard());

        let fol = Pattern::leaf("r", Vec::<Var>::new()).seq(
            vec![Pattern::leaf("a", ["x"]), Pattern::leaf("b", ["y"])],
            vec![SeqOp::Following],
        );
        assert!(fol.uses_following_sibling());
        assert!(!fol.uses_next_sibling());
    }

    #[test]
    fn label_footprint_collects_all_labels() {
        let labels: Vec<String> = pi3()
            .label_footprint()
            .unwrap()
            .iter()
            .map(|l| l.to_string())
            .collect();
        assert_eq!(
            labels,
            [
                "course",
                "prof",
                "r",
                "student",
                "supervise",
                "teach",
                "year"
            ]
        );
        // A wildcard anywhere kills the footprint.
        let w = Pattern::leaf("r", Vec::<Var>::new()).descendant(Pattern::wildcard(["z"]));
        assert_eq!(w.label_footprint(), None);
        assert_eq!(Pattern::wildcard(Vec::<Var>::new()).label_footprint(), None);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(pi3().size(), 8);
        assert_eq!(Pattern::leaf("a", ["x"]).size(), 1);
    }

    #[test]
    #[should_panic(expected = "sequence arity mismatch")]
    fn bad_seq_arity_panics() {
        let _ = Pattern::leaf("r", Vec::<Var>::new()).seq(
            vec![Pattern::leaf("a", Vec::<Var>::new())],
            vec![SeqOp::Next],
        );
    }
}
