#![warn(missing_docs)]

//! # xmlmap-patterns
//!
//! Tree patterns of *XML Schema Mappings* (PODS 2009): the extended grammar
//! (2) with all four axes and wildcard, their semantics over data trees,
//! and the type-fixpoint satisfiability engine powering the paper's
//! decidable static-analysis procedures.
//!
//! * [`ast`] — pattern syntax trees, feature detection, fully-specified
//!   check (grammar (5));
//! * [`parse()`](parse()) — the textual pattern syntax used throughout the examples;
//! * [`eval`] — `(T, s) ⊨ π(ā)`: match enumeration `π(T)` and matching
//!   under partial valuations (Prop 4.2);
//! * [`compiled`] — the evaluation kernel behind [`eval`]: interned
//!   variables, trail-based backtracking, bitset feasibility tables
//!   reusable across probes;
//! * [`mod@reference`] — the naive spec evaluator kept for differential tests;
//! * [`sat`] — satisfiability of patterns w.r.t. a DTD and achievable
//!   match-set enumeration (Lemma 4.1, and the engine behind Thm 5.2 /
//!   Prop 6.1 in `xmlmap-core`);
//! * [`stream`] — streaming membership for the downward fragment over SAX
//!   events in O(depth) memory, with diagnostics at the fragment boundary;
//! * [`sat_compiled`] — the compiled fixpoint engine behind [`sat`]:
//!   interned type bitsets, a dependency-driven worklist, and the per-DTD
//!   [`SatCache`] for repeated probes. The original engine survives as
//!   [`sat::reference`] for differential tests.

pub mod ast;
pub mod compiled;
pub mod eval;
pub mod minimize;
pub mod parse;
pub mod reference;
pub mod sat;
pub mod sat_compiled;
pub mod stream;

pub use ast::{LabelTest, ListItem, Pattern, SeqOp, Var};
pub use compiled::{CompiledPattern, Matcher};
pub use eval::{
    all_matches, for_each_match, matches, matches_at, matches_structural, matches_with, Valuation,
};
pub use minimize::minimize;
pub use parse::{parse, PatternParseError};
pub use sat::{
    achievable_match_sets, contained_in, equivalent, satisfiable, satisfiable_all,
    satisfiable_with_negations, BudgetExceeded, TypeEngine, DEFAULT_BUDGET,
};
pub use sat_compiled::{SatCache, SatEngine};
pub use stream::{
    matches_stream, StreamEnumerator, StreamMatcher, StreamPattern, UnstreamablePattern,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use xmlmap_dtd::Dtd;
    use xmlmap_trees::{Name, Tree, Value};

    /// Random small DTD from a fixed family over labels {r, a, b, c}.
    fn arb_dtd() -> impl Strategy<Value = Dtd> {
        let bodies = prop_oneof![
            Just("a*"),
            Just("a, b?"),
            Just("a|b"),
            Just("a?, b?, c?"),
            Just("(a|b)*"),
            Just("a, a"),
            Just("b+"),
        ];
        let inner = prop_oneof![Just(""), Just("c?"), Just("c*"), Just("c, c")];
        (bodies, inner.clone(), inner).prop_map(|(rb, ab, bb)| {
            Dtd::builder("r")
                .production("r", rb)
                .production("a", ab)
                .production("b", bb)
                .attrs("c", ["v"])
                .build()
                .unwrap()
        })
    }

    /// Random pattern over the same label set (single attribute on c).
    fn arb_pattern() -> impl Strategy<Value = Pattern> {
        let leaf = prop_oneof![
            Just(Pattern::leaf("a", Vec::<Var>::new())),
            Just(Pattern::leaf("b", Vec::<Var>::new())),
            Just(Pattern::leaf("c", ["x"])),
            Just(Pattern::leaf("c", ["y"])),
            Just(Pattern::wildcard(Vec::<Var>::new())),
            Just(Pattern::wildcard(["z"])),
        ];
        let sub = leaf.prop_recursive(3, 12, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(p, q)| p.child(q)),
                (inner.clone(), inner.clone()).prop_map(|(p, q)| p.descendant(q)),
                (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                    |(p, q, s, nx)| {
                        p.seq(
                            vec![q, s],
                            vec![if nx { SeqOp::Next } else { SeqOp::Following }],
                        )
                    }
                ),
            ]
        });
        sub.prop_map(|body| Pattern::leaf("r", Vec::<Var>::new()).child(body))
    }

    /// Exhaustively enumerates small trees over the DTD's alphabet and
    /// checks whether any conforming one matches the pattern.
    fn brute_force_satisfiable(dtd: &Dtd, pattern: &Pattern, max_nodes: usize) -> bool {
        let root_attrs: Vec<(Name, Value)> = dtd
            .attrs(dtd.root())
            .iter()
            .map(|a| (a.clone(), Value::str("d")))
            .collect();
        let mut frontier = vec![Tree::with_root_attrs(dtd.root().clone(), root_attrs)];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(t) = frontier.pop() {
            if !seen.insert(format!("{t:?}")) {
                continue;
            }
            if dtd.conforms(&t) && matches(&t, pattern) {
                return true;
            }
            if t.size() >= max_nodes {
                continue;
            }
            // Extend by one child anywhere, any non-root label.
            let nodes: Vec<_> = t.nodes().collect();
            for n in nodes {
                for label in dtd.alphabet() {
                    if label == dtd.root() {
                        continue;
                    }
                    let mut t2 = t.clone();
                    t2.add_child(
                        n,
                        label.clone(),
                        dtd.attrs(label)
                            .iter()
                            .map(|a| (a.clone(), Value::str("d"))),
                    );
                    frontier.push(t2);
                }
            }
        }
        false
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The type-fixpoint engine agrees with brute-force enumeration of
        /// small trees — when the engine says satisfiable, its witness
        /// matches; when it says no, no small tree matches.
        #[test]
        fn sat_engine_agrees_with_brute_force(d in arb_dtd(), p in arb_pattern()) {
            let engine_answer = satisfiable(&d, &p, DEFAULT_BUDGET).unwrap();
            match engine_answer {
                Some(w) => {
                    prop_assert!(d.conforms(&w), "witness must conform:\n{w:?}\n{d}");
                    prop_assert!(matches(&w, &p), "witness must match {p}:\n{w:?}");
                }
                None => {
                    prop_assert!(
                        !brute_force_satisfiable(&d, &p, 5),
                        "engine says UNSAT but a small tree matches {p} under\n{d}"
                    );
                }
            }
        }

        /// Match-set witnesses realise exactly their match set.
        #[test]
        fn match_set_witnesses_are_exact(d in arb_dtd(), p in arb_pattern(), q in arb_pattern()) {
            let sets = achievable_match_sets(&d, &[&p, &q], DEFAULT_BUDGET).unwrap();
            for (j, w) in &sets {
                prop_assert!(d.conforms(w));
                prop_assert_eq!(matches(w, &p), j.contains(&0), "J={:?} w=\n{:?}", j, w);
                prop_assert_eq!(matches(w, &q), j.contains(&1), "J={:?} w=\n{:?}", j, w);
            }
        }
    }
}
