//! The type-fixpoint satisfiability engine.
//!
//! This is the workhorse behind the paper's decidable static-analysis
//! results (Lemma 4.1, Thm 5.2, Prop 6.1): given a DTD `D` and patterns
//! `π₁, …, πₖ` (data values ignored — only variable-tuple *arity* matters),
//! it computes which **match sets** `J ⊆ {1..k}` are achievable, i.e. for
//! which `J` some `T ⊨ D` matches exactly the patterns in `J` at its root,
//! together with a witness document for each.
//!
//! ## How it works
//!
//! Fix the closure of all pattern nodes. The *type* of a subtree is the set
//! of **components** true at its root:
//!
//! * `NodeMatch(p)` — pattern node `p` matches at this node;
//! * `SubtreeMatch(p)` — `p` matches somewhere in this subtree (tracked only
//!   for nodes referenced by a `//` item).
//!
//! A node's type is a *deterministic* function of its label and the word of
//! its children's `(label, type)` pairs: each list item of each pattern node
//! becomes a small word acceptor over that pair alphabet (`//π` → "some
//! symbol carries `SubtreeMatch(π)`"; a sequence → a chain automaton with
//! `→` forcing adjacency and `→*` allowing gaps). The engine computes the
//! least fixpoint of *achievable* pairs `(ℓ, τ)`: a pair is achievable iff
//! some word over achievable pairs lies in `L(P_D(ℓ))` and induces `τ`.
//! Exactness (a candidate word induces `τ` and nothing else) comes for free
//! from determinism — this is what lets the same engine answer both the
//! existential (`CONS`) and universal (`ABSCONS°`) questions.
//!
//! The machine-state space is worst-case exponential in the pattern size —
//! as it must be: the problems are EXPTIME-/Π₂ᵖ-complete. A configurable
//! budget bounds the exploration and reports overruns explicitly.

use crate::ast::{ListItem, Pattern, SeqOp};
use std::collections::{BTreeSet, HashMap, VecDeque};
use xmlmap_dtd::Dtd;
use xmlmap_regex::Nfa;
use xmlmap_trees::{Name, Tree, Value};

/// The exploration exceeded its state budget; the answer is unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The budget that was exhausted (machine states explored).
    pub budget: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "type-fixpoint exploration exceeded its budget of {} states",
            self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A compact bitset used for component types.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
struct Bits(Vec<u64>);

impl Bits {
    fn new(len: usize) -> Bits {
        Bits(vec![0; len.div_ceil(64)])
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
    fn or_assign(&mut self, other: &Bits) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
}

/// Flattened pattern node.
struct NodeC {
    label: crate::ast::LabelTest,
    arity: usize,
    items: Vec<ItemC>,
}

/// Flattened list item.
enum ItemC {
    /// `//π` where π has the given pattern-node id.
    Desc(usize),
    /// A sequence item, indexing into the global sequence table.
    Seq(usize),
}

/// A sequence acceptor: members (pattern-node ids) and operators.
struct SeqC {
    members: Vec<usize>,
    ops: Vec<SeqOp>,
}

/// An achievable `(label, type)` pair plus the witness word that produced it.
struct PairInfo {
    label: Name,
    typ: Bits,
    /// Children realisation: ids of achievable pairs, in order.
    word: Vec<usize>,
}

/// The satisfiability engine for a DTD and a set of patterns.
pub struct TypeEngine<'a> {
    dtd: &'a Dtd,
    nodes: Vec<NodeC>,
    seqs: Vec<SeqC>,
    /// Root pattern-node id of each input pattern.
    roots: Vec<usize>,
    /// pid → SubtreeMatch component index (only for `//`-referenced nodes).
    subtree_bit: HashMap<usize, usize>,
    n_comps: usize,
    /// Achievable pairs, in discovery order (witness words only reference
    /// earlier sweeps, so recursion over them is well-founded).
    pairs: Vec<PairInfo>,
    pair_index: HashMap<(Name, Bits), usize>,
    states_explored: usize,
    budget: usize,
}

/// One machine state of the per-label word exploration.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MachineState {
    /// Subset state of the production NFA.
    dtd: BTreeSet<usize>,
    /// Subset state of every sequence acceptor.
    seqs: Vec<BTreeSet<usize>>,
    /// `SubtreeMatch` components seen on some symbol so far.
    seen: Bits,
}

impl<'a> TypeEngine<'a> {
    /// Builds the engine for `dtd` and `patterns`. `budget` bounds the total
    /// number of machine states explored (across all sweeps).
    pub fn new(dtd: &'a Dtd, patterns: &[&Pattern], budget: usize) -> TypeEngine<'a> {
        let mut nodes: Vec<NodeC> = Vec::new();
        let mut seqs: Vec<SeqC> = Vec::new();
        let mut desc_pids: Vec<usize> = Vec::new();

        fn flatten(
            p: &Pattern,
            nodes: &mut Vec<NodeC>,
            seqs: &mut Vec<SeqC>,
            desc_pids: &mut Vec<usize>,
        ) -> usize {
            let pid = nodes.len();
            nodes.push(NodeC {
                label: p.label.clone(),
                arity: p.vars.len(),
                items: Vec::new(),
            });
            let mut items = Vec::new();
            for item in &p.list {
                match item {
                    ListItem::Descendant(sub) => {
                        let sub_pid = flatten(sub, nodes, seqs, desc_pids);
                        desc_pids.push(sub_pid);
                        items.push(ItemC::Desc(sub_pid));
                    }
                    ListItem::Seq { members, ops } => {
                        let member_pids = members
                            .iter()
                            .map(|m| flatten(m, nodes, seqs, desc_pids))
                            .collect();
                        seqs.push(SeqC {
                            members: member_pids,
                            ops: ops.clone(),
                        });
                        items.push(ItemC::Seq(seqs.len() - 1));
                    }
                }
            }
            nodes[pid].items = items;
            pid
        }

        let roots = patterns
            .iter()
            .map(|p| flatten(p, &mut nodes, &mut seqs, &mut desc_pids))
            .collect();

        // Components: NodeMatch(pid) = bit pid; SubtreeMatch for every
        // `//`-referenced pid, and (transitively) everything below them —
        // SubtreeMatch(q) needs NodeMatch(q) at descendants, which the
        // engine gets from types, so only the referenced pid needs a bit.
        let n_nodes = nodes.len();
        let mut subtree_bit = HashMap::new();
        for pid in desc_pids {
            let next = n_nodes + subtree_bit.len();
            subtree_bit.entry(pid).or_insert(next);
        }
        let n_comps = n_nodes + subtree_bit.len();

        TypeEngine {
            dtd,
            nodes,
            seqs,
            roots,
            subtree_bit,
            n_comps,
            pairs: Vec::new(),
            pair_index: HashMap::new(),
            states_explored: 0,
            budget,
        }
    }

    /// Runs the fixpoint to completion.
    pub fn run(&mut self) -> Result<(), BudgetExceeded> {
        loop {
            let frozen = self.pairs.len();
            let labels: Vec<Name> = self.dtd.alphabet().cloned().collect();
            let mut discovered: Vec<PairInfo> = Vec::new();
            for label in &labels {
                self.explore_label(label, frozen, &mut discovered)?;
            }
            let mut grew = false;
            for info in discovered {
                let key = (info.label.clone(), info.typ.clone());
                if !self.pair_index.contains_key(&key) {
                    self.pair_index.insert(key, self.pairs.len());
                    self.pairs.push(info);
                    grew = true;
                }
            }
            if !grew {
                return Ok(());
            }
        }
    }

    /// Explores all children words for `label` over the first `frozen`
    /// achievable pairs, collecting every realizable `(label, τ)`.
    fn explore_label(
        &mut self,
        label: &Name,
        frozen: usize,
        discovered: &mut Vec<PairInfo>,
    ) -> Result<(), BudgetExceeded> {
        let epsilon_nfa = Nfa::epsilon();
        let nfa: &Nfa<Name> = self.dtd.horizontal(label).unwrap_or(&epsilon_nfa);

        let initial = MachineState {
            dtd: BTreeSet::from([0usize]),
            seqs: vec![BTreeSet::from([0usize]); self.seqs.len()],
            seen: Bits::new(self.n_comps),
        };
        let mut index: HashMap<MachineState, usize> = HashMap::new();
        let mut states: Vec<MachineState> = Vec::new();
        let mut parent: Vec<Option<(usize, usize)>> = Vec::new(); // (state, pair id)
        let mut queue = VecDeque::new();
        index.insert(initial.clone(), 0);
        states.push(initial);
        parent.push(None);
        queue.push_back(0usize);
        let mut emitted: BTreeSet<Bits> = BTreeSet::new();

        while let Some(si) = queue.pop_front() {
            self.states_explored += 1;
            if self.states_explored > self.budget {
                return Err(BudgetExceeded {
                    budget: self.budget,
                });
            }
            let state = states[si].clone();

            // Complete word? Emit the induced type.
            if state.dtd.iter().any(|&q| nfa.accepting[q]) {
                let typ = self.induced_type(label, &state);
                if emitted.insert(typ.clone())
                    && !self
                        .pair_index
                        .contains_key(&(label.clone(), typ.clone()))
                {
                    // Reconstruct the witness word.
                    let mut word = Vec::new();
                    let mut cur = si;
                    while let Some((prev, pid)) = parent[cur] {
                        word.push(pid);
                        cur = prev;
                    }
                    word.reverse();
                    // A later-discovered duplicate within `discovered` is
                    // filtered by the caller's index check.
                    discovered.push(PairInfo {
                        label: label.clone(),
                        typ,
                        word,
                    });
                }
            }

            // Transitions on every achievable pair.
            for pid in 0..frozen {
                let next = self.step(&state, nfa, pid);
                if next.dtd.is_empty() {
                    continue; // the production can never complete from here
                }
                if !index.contains_key(&next) {
                    let ni = states.len();
                    index.insert(next.clone(), ni);
                    states.push(next);
                    parent.push(Some((si, pid)));
                    queue.push_back(ni);
                }
            }
        }
        Ok(())
    }

    /// One machine transition on the achievable pair `pid`.
    fn step(&self, state: &MachineState, nfa: &Nfa<Name>, pid: usize) -> MachineState {
        let pair = &self.pairs[pid];
        // DTD production part.
        let mut dtd = BTreeSet::new();
        for &q in &state.dtd {
            for (sym, q2) in &nfa.transitions[q] {
                if sym == &pair.label {
                    dtd.insert(*q2);
                }
            }
        }
        // Sequence acceptors.
        let mut seqs = Vec::with_capacity(self.seqs.len());
        for (k, seq) in self.seqs.iter().enumerate() {
            let n = seq.members.len();
            let mut next = BTreeSet::new();
            for &s in &state.seqs[k] {
                if s == n {
                    next.insert(n); // trailing Σ*
                    continue;
                }
                // Gap self-loop: leading Σ* at 0, or →* gaps.
                if s == 0 || seq.ops[s - 1] == SeqOp::Following {
                    next.insert(s);
                }
                // Advance when the symbol's type matches the member.
                if pair.typ.get(seq.members[s]) {
                    next.insert(s + 1);
                }
            }
            seqs.push(next);
        }
        // Seen SubtreeMatch components.
        let mut seen = state.seen.clone();
        seen.or_assign(&pair.typ);
        // Only the SubtreeMatch range matters for `seen`; NodeMatch bits of
        // children are harmless to keep (they are never read from `seen`).
        MachineState { dtd, seqs, seen }
    }

    /// The type induced at an ℓ-labelled node whose children produced
    /// machine state `state`.
    fn induced_type(&self, label: &Name, state: &MachineState) -> Bits {
        let mut typ = Bits::new(self.n_comps);
        let arity = self.dtd.arity(label);
        for (pid, node) in self.nodes.iter().enumerate() {
            // An empty variable tuple imposes no arity requirement
            // (mirrors `eval`; see the comment there).
            if !node.label.accepts(label) || (node.arity != 0 && node.arity != arity) {
                continue;
            }
            let all_items = node.items.iter().all(|item| match item {
                ItemC::Desc(sub) => state.seen.get(self.subtree_bit[sub]),
                ItemC::Seq(k) => {
                    let n = self.seqs[*k].members.len();
                    state.seqs[*k].contains(&n)
                }
            });
            if all_items {
                typ.set(pid);
            }
        }
        // SubtreeMatch: here or in some child's subtree.
        for (&pid, &bit) in &self.subtree_bit {
            if typ.get(pid) || state.seen.get(bit) {
                typ.set(bit);
            }
        }
        typ
    }

    /// All achievable root match sets `J` (indices into the input pattern
    /// list), each with a witness document conforming to the DTD. Every
    /// attribute of the witness carries the same constant, so implicit
    /// equalities in patterns are always satisfied.
    pub fn root_match_sets(&mut self) -> Result<Vec<(BTreeSet<usize>, Tree)>, BudgetExceeded> {
        self.run()?;
        let mut out: Vec<(BTreeSet<usize>, Tree)> = Vec::new();
        let mut seen: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for (id, info) in self.pairs.iter().enumerate() {
            if &info.label != self.dtd.root() {
                continue;
            }
            let set: BTreeSet<usize> = self
                .roots
                .iter()
                .enumerate()
                .filter(|(_, &pid)| info.typ.get(pid))
                .map(|(i, _)| i)
                .collect();
            if seen.insert(set.clone()) {
                out.push((set, self.build_witness(id)));
            }
        }
        Ok(out)
    }

    /// Is there a `T ⊨ D` matching **all** input patterns at the root?
    /// Returns a witness. (Lemma 4.1 is the single-pattern case.)
    pub fn satisfiable_conj(&mut self) -> Result<Option<Tree>, BudgetExceeded> {
        let n = self.roots.len();
        let sets = self.root_match_sets()?;
        Ok(sets
            .into_iter()
            .find(|(set, _)| set.len() == n)
            .map(|(_, tree)| tree))
    }

    /// Total machine states explored so far (diagnostics for benches).
    pub fn states_explored(&self) -> usize {
        self.states_explored
    }

    fn build_witness(&self, pair_id: usize) -> Tree {
        fn attach(engine: &TypeEngine<'_>, tree: &mut Tree, at: xmlmap_trees::NodeId, pid: usize) {
            for &child in &engine.pairs[pid].word {
                let info = &engine.pairs[child];
                let node = tree.add_child(
                    at,
                    info.label.clone(),
                    engine
                        .dtd
                        .attrs(&info.label)
                        .iter()
                        .map(|a| (a.clone(), Value::str("d"))),
                );
                attach(engine, tree, node, child);
            }
        }
        let info = &self.pairs[pair_id];
        let mut tree = Tree::with_root_attrs(
            info.label.clone(),
            self.dtd
                .attrs(&info.label)
                .iter()
                .map(|a| (a.clone(), Value::str("d"))),
        );
        attach(self, &mut tree, Tree::ROOT, pair_id);
        tree
    }
}

/// Pattern satisfiability w.r.t. a DTD (Lemma 4.1): is there `T ⊨ D` with
/// `π(T) ≠ ∅`? Returns a witness document.
pub fn satisfiable(
    dtd: &Dtd,
    pattern: &Pattern,
    budget: usize,
) -> Result<Option<Tree>, BudgetExceeded> {
    TypeEngine::new(dtd, &[pattern], budget).satisfiable_conj()
}

/// Joint satisfiability of a pattern conjunction w.r.t. a DTD.
pub fn satisfiable_all(
    dtd: &Dtd,
    patterns: &[&Pattern],
    budget: usize,
) -> Result<Option<Tree>, BudgetExceeded> {
    TypeEngine::new(dtd, patterns, budget).satisfiable_conj()
}

/// All achievable root match sets with witnesses (see [`TypeEngine`]).
pub fn achievable_match_sets(
    dtd: &Dtd,
    patterns: &[&Pattern],
    budget: usize,
) -> Result<Vec<(BTreeSet<usize>, Tree)>, BudgetExceeded> {
    TypeEngine::new(dtd, patterns, budget).root_match_sets()
}

/// Default exploration budget: generous for interactive use, bounded enough
/// to fail fast on adversarial instances.
pub const DEFAULT_BUDGET: usize = 2_000_000;

/// The paper's §9 open problem, solved exactly by the type-fixpoint
/// engine: given a DTD and pattern sets `P⁺`/`P⁻`, is there `T ⊨ D`
/// matching **all** of `P⁺` and **none** of `P⁻`? Returns a witness.
///
/// (The paper observes the problem is in EXPTIME and NP-hard and that its
/// exact complexity would close several gaps; this implementation is the
/// EXPTIME upper bound made executable — match sets are computed exactly,
/// so negative requirements cost nothing extra.)
pub fn satisfiable_with_negations(
    dtd: &Dtd,
    positive: &[&Pattern],
    negative: &[&Pattern],
    budget: usize,
) -> Result<Option<Tree>, BudgetExceeded> {
    let mut all: Vec<&Pattern> = positive.to_vec();
    all.extend_from_slice(negative);
    let sets = achievable_match_sets(dtd, &all, budget)?;
    let n_pos = positive.len();
    Ok(sets
        .into_iter()
        .find(|(j, _)| {
            (0..n_pos).all(|i| j.contains(&i)) && (n_pos..all.len()).all(|i| !j.contains(&i))
        })
        .map(|(_, w)| w))
}

/// Pattern containment relative to a DTD: does every `T ⊨ D` matching `p`
/// also match `q`? Decided via [`satisfiable_with_negations`] (a
/// counterexample matches `p` but not `q`).
pub fn contained_in(
    dtd: &Dtd,
    p: &Pattern,
    q: &Pattern,
    budget: usize,
) -> Result<bool, BudgetExceeded> {
    Ok(satisfiable_with_negations(dtd, &[p], &[q], budget)?.is_none())
}

/// Pattern equivalence relative to a DTD: mutual containment.
pub fn equivalent(
    dtd: &Dtd,
    p: &Pattern,
    q: &Pattern,
    budget: usize,
) -> Result<bool, BudgetExceeded> {
    Ok(contained_in(dtd, p, q, budget)? && contained_in(dtd, q, p, budget)?)
}

/// Polynomial-time satisfiability over **nested-relational** DTDs for
/// **downward** patterns (no `→`/`→*`) — the engine behind the PTIME cells
/// of Figure 1 (Fact 5.1 and Thm 6.3).
///
/// Returns `None` when the inputs are outside the fragment (the DTD is not
/// nested-relational, or the pattern uses a horizontal axis); callers then
/// fall back to the general engine.
///
/// The algorithm computes, bottom-up over the pattern, the set of DTD
/// labels each pattern node can sit at. Because nested-relational DTDs have
/// no disjunction, requirements of co-located pattern nodes always merge:
/// a pattern is satisfiable iff its root can sit at the DTD root.
pub fn satisfiable_nr(dtd: &Dtd, pattern: &Pattern) -> Option<bool> {
    dtd.nested_relational()?;
    if pattern.uses_next_sibling() || pattern.uses_following_sibling() {
        return None;
    }

    // Strict-descendant reachability between labels.
    let labels: Vec<Name> = dtd.alphabet().cloned().collect();
    let mut below: HashMap<Name, BTreeSet<Name>> = HashMap::new();
    for l in &labels {
        // BFS through productions.
        let mut seen: BTreeSet<Name> = BTreeSet::new();
        let mut stack: Vec<Name> = dtd.production(l).symbols().into_iter().collect();
        while let Some(s) = stack.pop() {
            if seen.insert(s.clone()) {
                stack.extend(dtd.production(&s).symbols());
            }
        }
        below.insert(l.clone(), seen);
    }

    // allowed(p) ⊆ labels, bottom-up over the pattern tree.
    fn allowed(
        dtd: &Dtd,
        labels: &[Name],
        below: &HashMap<Name, BTreeSet<Name>>,
        p: &Pattern,
    ) -> BTreeSet<Name> {
        // Children first.
        let mut item_allowed: Vec<(bool, BTreeSet<Name>)> = Vec::new(); // (is_desc, set)
        for item in &p.list {
            match item {
                ListItem::Descendant(sub) => {
                    item_allowed.push((true, allowed(dtd, labels, below, sub)));
                }
                ListItem::Seq { members, .. } => {
                    // Downward fragment: single-member sequences only
                    // (multi-member implies a horizontal op, excluded above).
                    item_allowed.push((false, allowed(dtd, labels, below, &members[0])));
                }
            }
        }
        labels
            .iter()
            .filter(|l| {
                let l: &Name = l;
                if !p.label.accepts(l) {
                    return false;
                }
                if !p.vars.is_empty() && dtd.arity(l) != p.vars.len() {
                    return false;
                }
                item_allowed.iter().all(|(is_desc, set)| {
                    if *is_desc {
                        below[l].iter().any(|d| set.contains(d))
                    } else {
                        dtd.production(l).symbols().iter().any(|c| set.contains(c))
                    }
                })
            })
            .cloned()
            .collect()
    }

    let root_allowed = allowed(dtd, &labels, &below, pattern);
    Some(root_allowed.contains(dtd.root()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::parse::parse;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn pat(s: &str) -> Pattern {
        parse(s).unwrap()
    }

    const D1: &str = "root r
        r -> prof*
        prof -> teach, supervise
        teach -> year
        year -> course, course
        supervise -> student*
        prof @ name
        student @ sid
        year @ y
        course @ cno";

    #[test]
    fn satisfiable_basic() {
        let d = dtd(D1);
        let p = pat("r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]");
        let w = satisfiable(&d, &p, DEFAULT_BUDGET).unwrap().expect("satisfiable");
        assert!(d.conforms(&w));
        assert!(eval::matches(&w, &p), "witness must match:\n{w:?}");
    }

    #[test]
    fn unsatisfiable_wrong_shape() {
        let d = dtd(D1);
        // Three courses under one year is impossible (production: exactly 2).
        let p = pat("r//year(y)[course(a) -> course(b) -> course(c)]");
        assert_eq!(satisfiable(&d, &p, DEFAULT_BUDGET).unwrap(), None);
        // student below teach is impossible.
        let q = pat("r//teach[//student(s)]");
        assert_eq!(satisfiable(&d, &q, DEFAULT_BUDGET).unwrap(), None);
    }

    #[test]
    fn arity_mismatch_is_unsatisfiable() {
        let d = dtd(D1);
        // course has one attribute, not two.
        let p = pat("r//course(a, b)");
        assert_eq!(satisfiable(&d, &p, DEFAULT_BUDGET).unwrap(), None);
        // bare course (zero variables) carries no arity requirement.
        let q = pat("r//course");
        assert!(satisfiable(&d, &q, DEFAULT_BUDGET).unwrap().is_some());
    }

    #[test]
    fn wildcard_satisfiability() {
        let d = dtd(D1);
        // r/prof/teach/year(y); wildcards must respect arities (prof has
        // one attribute, teach none).
        let p = pat("r[_(x)[_[_(y)]]]");
        let w = satisfiable(&d, &p, DEFAULT_BUDGET).unwrap().expect("satisfiable");
        assert!(eval::matches(&w, &p));
    }

    #[test]
    fn next_sibling_order_constraints() {
        let d = dtd("root r\nr -> a, b\na @ v\nb @ v");
        assert!(satisfiable(&d, &pat("r[a(x) -> b(y)]"), DEFAULT_BUDGET)
            .unwrap()
            .is_some());
        assert!(satisfiable(&d, &pat("r[b(x) -> a(y)]"), DEFAULT_BUDGET)
            .unwrap()
            .is_none());
        assert!(satisfiable(&d, &pat("r[a(x) ->* b(y)]"), DEFAULT_BUDGET)
            .unwrap()
            .is_some());
        assert!(satisfiable(&d, &pat("r[b(x) ->* a(y)]"), DEFAULT_BUDGET)
            .unwrap()
            .is_none());
    }

    #[test]
    fn following_needs_strictness() {
        let d = dtd("root r\nr -> a");
        // a ->* a needs two distinct a-children; the DTD allows only one.
        assert!(satisfiable(&d, &pat("r[a ->* a]"), DEFAULT_BUDGET)
            .unwrap()
            .is_none());
        let d2 = dtd("root r\nr -> a, a");
        assert!(satisfiable(&d2, &pat("r[a ->* a]"), DEFAULT_BUDGET)
            .unwrap()
            .is_some());
    }

    #[test]
    fn conjunction_of_patterns() {
        let d = dtd("root r\nr -> a*, b?");
        let pa = pat("r/a");
        let pb = pat("r/b");
        let w = satisfiable_all(&d, &[&pa, &pb], DEFAULT_BUDGET)
            .unwrap()
            .expect("both satisfiable together");
        assert!(eval::matches(&w, &pa) && eval::matches(&w, &pb));

        // a and c cannot coexist (c not even in the DTD).
        let pc = pat("r/c");
        assert!(satisfiable_all(&d, &[&pa, &pc], DEFAULT_BUDGET)
            .unwrap()
            .is_none());
    }

    #[test]
    fn match_sets_enumeration() {
        let d = dtd("root r\nr -> a?, b?");
        let pa = pat("r/a");
        let pb = pat("r/b");
        let sets = achievable_match_sets(&d, &[&pa, &pb], DEFAULT_BUDGET).unwrap();
        let js: BTreeSet<BTreeSet<usize>> = sets.iter().map(|(j, _)| j.clone()).collect();
        let expect: BTreeSet<BTreeSet<usize>> = [
            BTreeSet::new(),
            BTreeSet::from([0]),
            BTreeSet::from([1]),
            BTreeSet::from([0, 1]),
        ]
        .into_iter()
        .collect();
        assert_eq!(js, expect);
        // Each witness realises exactly its match set.
        for (j, w) in &sets {
            assert!(d.conforms(w));
            assert_eq!(eval::matches(w, &pa), j.contains(&0));
            assert_eq!(eval::matches(w, &pb), j.contains(&1));
        }
    }

    #[test]
    fn forced_match_set() {
        // b is mandatory: the empty match set is NOT achievable.
        let d = dtd("root r\nr -> b");
        let pb = pat("r/b");
        let sets = achievable_match_sets(&d, &[&pb], DEFAULT_BUDGET).unwrap();
        let js: Vec<BTreeSet<usize>> = sets.into_iter().map(|(j, _)| j).collect();
        assert_eq!(js, vec![BTreeSet::from([0])]);
    }

    #[test]
    fn recursive_dtd_descendant() {
        let d = dtd("root r\nr -> a\na -> a?, b?\nb -> ");
        let p = pat("r//b");
        let w = satisfiable(&d, &p, DEFAULT_BUDGET).unwrap().expect("satisfiable");
        assert!(d.conforms(&w));
        assert!(eval::matches(&w, &p));
    }

    #[test]
    fn budget_exhaustion_reports() {
        let d = dtd(D1);
        let p = pat("r//course(c)");
        assert!(satisfiable(&d, &p, 2).is_err());
    }

    #[test]
    fn negation_satisfiability_open_problem() {
        let d = dtd("root r\nr -> a?, b?, c?");
        let pa = pat("r/a");
        let pb = pat("r/b");
        let pc = pat("r/c");
        // Match a and b but not c.
        let w = satisfiable_with_negations(&d, &[&pa, &pb], &[&pc], DEFAULT_BUDGET)
            .unwrap()
            .expect("satisfiable");
        assert!(crate::eval::matches(&w, &pa));
        assert!(crate::eval::matches(&w, &pb));
        assert!(!crate::eval::matches(&w, &pc));
        // Matching a without matching the wildcard child test is impossible.
        let any_child = pat("r/_");
        assert!(
            satisfiable_with_negations(&d, &[&pa], &[&any_child], DEFAULT_BUDGET)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn containment_and_equivalence() {
        let d = dtd("root r\nr -> a*\na -> b?\nb @ v");
        // a with a b-child implies a exists.
        assert!(contained_in(&d, &pat("r/a/b(x)"), &pat("r/a"), DEFAULT_BUDGET).unwrap());
        assert!(!contained_in(&d, &pat("r/a"), &pat("r/a/b(x)"), DEFAULT_BUDGET).unwrap());
        // Under this DTD, //b and a/b are equivalent (b only under a).
        assert!(equivalent(&d, &pat("r//b(x)"), &pat("r/a/b(x)"), DEFAULT_BUDGET).unwrap());
        // Structural containment uses the DTD: every a-child is matched by
        // the wildcard child test.
        assert!(contained_in(&d, &pat("r/a"), &pat("r/_"), DEFAULT_BUDGET).unwrap());
    }

    #[test]
    fn nr_satisfiability_agrees_with_engine() {
        let d = dtd(
            "root r
             r -> a, b*, c?
             a -> d?
             b -> e
             c @ v
             e @ w",
        );
        for (text, expect) in [
            ("r/a", true),
            ("r/a/d", true),
            ("r//d", true),
            ("r[a, b[e(x)], c(y)]", true),
            ("r//e(x)", true),
            ("r/e(x)", false),      // e is not a child of r
            ("r//c(x)", true),
            ("r/c(x, y)", false),   // arity mismatch
            ("r[//d, //e(x)]", true),
            ("r/b/d", false),       // d not under b
            ("_[a]", true),         // wildcard root still sits at r
        ] {
            let pat = parse(text).unwrap();
            let fast = satisfiable_nr(&d, &pat).expect("inside fragment");
            let slow = satisfiable(&d, &pat, DEFAULT_BUDGET).unwrap().is_some();
            assert_eq!(fast, slow, "{text}");
            assert_eq!(fast, expect, "{text}");
        }
    }

    #[test]
    fn nr_satisfiability_rejects_out_of_fragment() {
        let d = dtd("root r
r -> a, b");
        assert!(satisfiable_nr(&d, &pat("r[a -> b]")).is_none());
        assert!(satisfiable_nr(&d, &pat("r[a ->* b]")).is_none());
        let not_nr = dtd("root r
r -> a|b");
        assert!(satisfiable_nr(&not_nr, &pat("r/a")).is_none());
    }

    #[test]
    fn deep_descendant_nesting() {
        let d = dtd("root r\nr -> a\na -> a?, b?\nb -> c\nc @ v");
        let p = pat("r//a[//c(x)]");
        let w = satisfiable(&d, &p, DEFAULT_BUDGET).unwrap().expect("sat");
        assert!(eval::matches(&w, &p));
        // //c directly under r also requires the a/b chain.
        let q = pat("r[//c(x)]");
        assert!(satisfiable(&d, &q, DEFAULT_BUDGET).unwrap().is_some());
    }
}
