//! The type-fixpoint satisfiability engine.
//!
//! This is the workhorse behind the paper's decidable static-analysis
//! results (Lemma 4.1, Thm 5.2, Prop 6.1): given a DTD `D` and patterns
//! `π₁, …, πₖ` (data values ignored — only variable-tuple *arity* matters),
//! it computes which **match sets** `J ⊆ {1..k}` are achievable, i.e. for
//! which `J` some `T ⊨ D` matches exactly the patterns in `J` at its root,
//! together with a witness document for each.
//!
//! ## How it works
//!
//! Fix the closure of all pattern nodes. The *type* of a subtree is the set
//! of **components** true at its root:
//!
//! * `NodeMatch(p)` — pattern node `p` matches at this node;
//! * `SubtreeMatch(p)` — `p` matches somewhere in this subtree (tracked only
//!   for nodes referenced by a `//` item).
//!
//! A node's type is a *deterministic* function of its label and the word of
//! its children's `(label, type)` pairs: each list item of each pattern node
//! becomes a small word acceptor over that pair alphabet (`//π` → "some
//! symbol carries `SubtreeMatch(π)`"; a sequence → a chain automaton with
//! `→` forcing adjacency and `→*` allowing gaps). The engine computes the
//! least fixpoint of *achievable* pairs `(ℓ, τ)`: a pair is achievable iff
//! some word over achievable pairs lies in `L(P_D(ℓ))` and induces `τ`.
//! Exactness (a candidate word induces `τ` and nothing else) comes for free
//! from determinism — this is what lets the same engine answer both the
//! existential (`CONS`) and universal (`ABSCONS°`) questions.
//!
//! The machine-state space is worst-case exponential in the pattern size —
//! as it must be: the problems are EXPTIME-/Π₂ᵖ-complete. A configurable
//! budget bounds the exploration and reports overruns explicitly.
//!
//! ## Two engines
//!
//! The entry points below run the **compiled** engine
//! ([`crate::sat_compiled`]): interned labels and type bitsets, flat-word
//! machine states with hashed dedup, a dependency-driven worklist instead
//! of whole-alphabet re-sweeps, and an optional gated parallel frontier
//! (see DESIGN.md §8). Repeated probes against one schema should go
//! through [`SatCache`], which compiles the DTD and each pattern set once
//! and memoizes match-set results. The original engine survives unchanged
//! as [`mod@reference`] ([`TypeEngine`] re-exported for compatibility) and is
//! differentially tested against the compiled one in `tests/sat_equiv.rs`.

use crate::ast::{ListItem, Pattern};
use std::collections::{BTreeSet, HashMap};
use xmlmap_dtd::Dtd;
use xmlmap_trees::{Name, Tree};

pub mod reference;

pub use crate::sat_compiled::{SatCache, SatEngine};
pub use reference::TypeEngine;

/// The exploration exceeded its state budget; the answer is unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The budget that was exhausted (machine states explored).
    pub budget: usize,
    /// States actually explored when the engine gave up (≥ budget).
    pub states_explored: usize,
    /// Which operation blew the budget (caller-supplied, e.g.
    /// `"consistency check"` or `"reference engine"`).
    pub context: String,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "type-fixpoint exploration ({}) exceeded its budget of {} states \
             ({} states explored at abort)",
            self.context, self.budget, self.states_explored
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Pattern satisfiability w.r.t. a DTD (Lemma 4.1): is there `T ⊨ D` with
/// `π(T) ≠ ∅`? Returns a witness document.
pub fn satisfiable(
    dtd: &Dtd,
    pattern: &Pattern,
    budget: usize,
) -> Result<Option<Tree>, BudgetExceeded> {
    SatEngine::new(dtd, &[pattern], budget)
        .with_context("pattern satisfiability")
        .satisfiable_conj()
}

/// Joint satisfiability of a pattern conjunction w.r.t. a DTD.
pub fn satisfiable_all(
    dtd: &Dtd,
    patterns: &[&Pattern],
    budget: usize,
) -> Result<Option<Tree>, BudgetExceeded> {
    SatEngine::new(dtd, patterns, budget)
        .with_context("conjunctive satisfiability")
        .satisfiable_conj()
}

/// All achievable root match sets with witnesses (see module docs).
pub fn achievable_match_sets(
    dtd: &Dtd,
    patterns: &[&Pattern],
    budget: usize,
) -> Result<Vec<(BTreeSet<usize>, Tree)>, BudgetExceeded> {
    SatEngine::new(dtd, patterns, budget)
        .with_context("match-set enumeration")
        .root_match_sets()
}

/// Default exploration budget: generous for interactive use, bounded enough
/// to fail fast on adversarial instances.
pub const DEFAULT_BUDGET: usize = 2_000_000;

/// The paper's §9 open problem, solved exactly by the type-fixpoint
/// engine: given a DTD and pattern sets `P⁺`/`P⁻`, is there `T ⊨ D`
/// matching **all** of `P⁺` and **none** of `P⁻`? Returns a witness.
///
/// (The paper observes the problem is in EXPTIME and NP-hard and that its
/// exact complexity would close several gaps; this implementation is the
/// EXPTIME upper bound made executable — match sets are computed exactly,
/// so negative requirements cost nothing extra.)
pub fn satisfiable_with_negations(
    dtd: &Dtd,
    positive: &[&Pattern],
    negative: &[&Pattern],
    budget: usize,
) -> Result<Option<Tree>, BudgetExceeded> {
    let mut all: Vec<&Pattern> = positive.to_vec();
    all.extend_from_slice(negative);
    let sets = achievable_match_sets(dtd, &all, budget)?;
    let n_pos = positive.len();
    Ok(sets
        .into_iter()
        .find(|(j, _)| {
            (0..n_pos).all(|i| j.contains(&i)) && (n_pos..all.len()).all(|i| !j.contains(&i))
        })
        .map(|(_, w)| w))
}

/// Pattern containment relative to a DTD: does every `T ⊨ D` matching `p`
/// also match `q`? Decided via [`satisfiable_with_negations`] (a
/// counterexample matches `p` but not `q`).
pub fn contained_in(
    dtd: &Dtd,
    p: &Pattern,
    q: &Pattern,
    budget: usize,
) -> Result<bool, BudgetExceeded> {
    Ok(satisfiable_with_negations(dtd, &[p], &[q], budget)?.is_none())
}

/// Pattern equivalence relative to a DTD: mutual containment.
pub fn equivalent(
    dtd: &Dtd,
    p: &Pattern,
    q: &Pattern,
    budget: usize,
) -> Result<bool, BudgetExceeded> {
    Ok(contained_in(dtd, p, q, budget)? && contained_in(dtd, q, p, budget)?)
}

/// Polynomial-time satisfiability over **nested-relational** DTDs for
/// **downward** patterns (no `→`/`→*`) — the engine behind the PTIME cells
/// of Figure 1 (Fact 5.1 and Thm 6.3).
///
/// Returns `None` when the inputs are outside the fragment (the DTD is not
/// nested-relational, or the pattern uses a horizontal axis); callers then
/// fall back to the general engine.
///
/// The algorithm computes, bottom-up over the pattern, the set of DTD
/// labels each pattern node can sit at. Because nested-relational DTDs have
/// no disjunction, requirements of co-located pattern nodes always merge:
/// a pattern is satisfiable iff its root can sit at the DTD root.
pub fn satisfiable_nr(dtd: &Dtd, pattern: &Pattern) -> Option<bool> {
    dtd.nested_relational()?;
    if pattern.uses_next_sibling() || pattern.uses_following_sibling() {
        return None;
    }

    // Strict-descendant reachability between labels.
    let labels: Vec<Name> = dtd.alphabet().cloned().collect();
    let mut below: HashMap<Name, BTreeSet<Name>> = HashMap::new();
    for l in &labels {
        // BFS through productions.
        let mut seen: BTreeSet<Name> = BTreeSet::new();
        let mut stack: Vec<Name> = dtd.production(l).symbols().into_iter().collect();
        while let Some(s) = stack.pop() {
            if seen.insert(s.clone()) {
                stack.extend(dtd.production(&s).symbols());
            }
        }
        below.insert(l.clone(), seen);
    }

    // allowed(p) ⊆ labels, bottom-up over the pattern tree.
    fn allowed(
        dtd: &Dtd,
        labels: &[Name],
        below: &HashMap<Name, BTreeSet<Name>>,
        p: &Pattern,
    ) -> BTreeSet<Name> {
        // Children first.
        let mut item_allowed: Vec<(bool, BTreeSet<Name>)> = Vec::new(); // (is_desc, set)
        for item in &p.list {
            match item {
                ListItem::Descendant(sub) => {
                    item_allowed.push((true, allowed(dtd, labels, below, sub)));
                }
                ListItem::Seq { members, .. } => {
                    // Downward fragment: single-member sequences only
                    // (multi-member implies a horizontal op, excluded above).
                    item_allowed.push((false, allowed(dtd, labels, below, &members[0])));
                }
            }
        }
        labels
            .iter()
            .filter(|l| {
                let l: &Name = l;
                if !p.label.accepts(l) {
                    return false;
                }
                if !p.vars.is_empty() && dtd.arity(l) != p.vars.len() {
                    return false;
                }
                item_allowed.iter().all(|(is_desc, set)| {
                    if *is_desc {
                        below[l].iter().any(|d| set.contains(d))
                    } else {
                        dtd.production(l).symbols().iter().any(|c| set.contains(c))
                    }
                })
            })
            .cloned()
            .collect()
    }

    let root_allowed = allowed(dtd, &labels, &below, pattern);
    Some(root_allowed.contains(dtd.root()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::parse::parse;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn pat(s: &str) -> Pattern {
        parse(s).unwrap()
    }

    const D1: &str = "root r
        r -> prof*
        prof -> teach, supervise
        teach -> year
        year -> course, course
        supervise -> student*
        prof @ name
        student @ sid
        year @ y
        course @ cno";

    #[test]
    fn satisfiable_basic() {
        let d = dtd(D1);
        let p =
            pat("r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]");
        let w = satisfiable(&d, &p, DEFAULT_BUDGET)
            .unwrap()
            .expect("satisfiable");
        assert!(d.conforms(&w));
        assert!(eval::matches(&w, &p), "witness must match:\n{w:?}");
    }

    #[test]
    fn unsatisfiable_wrong_shape() {
        let d = dtd(D1);
        // Three courses under one year is impossible (production: exactly 2).
        let p = pat("r//year(y)[course(a) -> course(b) -> course(c)]");
        assert_eq!(satisfiable(&d, &p, DEFAULT_BUDGET).unwrap(), None);
        // student below teach is impossible.
        let q = pat("r//teach[//student(s)]");
        assert_eq!(satisfiable(&d, &q, DEFAULT_BUDGET).unwrap(), None);
    }

    #[test]
    fn arity_mismatch_is_unsatisfiable() {
        let d = dtd(D1);
        // course has one attribute, not two.
        let p = pat("r//course(a, b)");
        assert_eq!(satisfiable(&d, &p, DEFAULT_BUDGET).unwrap(), None);
        // bare course (zero variables) carries no arity requirement.
        let q = pat("r//course");
        assert!(satisfiable(&d, &q, DEFAULT_BUDGET).unwrap().is_some());
    }

    #[test]
    fn wildcard_satisfiability() {
        let d = dtd(D1);
        // r/prof/teach/year(y); wildcards must respect arities (prof has
        // one attribute, teach none).
        let p = pat("r[_(x)[_[_(y)]]]");
        let w = satisfiable(&d, &p, DEFAULT_BUDGET)
            .unwrap()
            .expect("satisfiable");
        assert!(eval::matches(&w, &p));
    }

    #[test]
    fn next_sibling_order_constraints() {
        let d = dtd("root r\nr -> a, b\na @ v\nb @ v");
        assert!(satisfiable(&d, &pat("r[a(x) -> b(y)]"), DEFAULT_BUDGET)
            .unwrap()
            .is_some());
        assert!(satisfiable(&d, &pat("r[b(x) -> a(y)]"), DEFAULT_BUDGET)
            .unwrap()
            .is_none());
        assert!(satisfiable(&d, &pat("r[a(x) ->* b(y)]"), DEFAULT_BUDGET)
            .unwrap()
            .is_some());
        assert!(satisfiable(&d, &pat("r[b(x) ->* a(y)]"), DEFAULT_BUDGET)
            .unwrap()
            .is_none());
    }

    #[test]
    fn following_needs_strictness() {
        let d = dtd("root r\nr -> a");
        // a ->* a needs two distinct a-children; the DTD allows only one.
        assert!(satisfiable(&d, &pat("r[a ->* a]"), DEFAULT_BUDGET)
            .unwrap()
            .is_none());
        let d2 = dtd("root r\nr -> a, a");
        assert!(satisfiable(&d2, &pat("r[a ->* a]"), DEFAULT_BUDGET)
            .unwrap()
            .is_some());
    }

    #[test]
    fn conjunction_of_patterns() {
        let d = dtd("root r\nr -> a*, b?");
        let pa = pat("r/a");
        let pb = pat("r/b");
        let w = satisfiable_all(&d, &[&pa, &pb], DEFAULT_BUDGET)
            .unwrap()
            .expect("both satisfiable together");
        assert!(eval::matches(&w, &pa) && eval::matches(&w, &pb));

        // a and c cannot coexist (c not even in the DTD).
        let pc = pat("r/c");
        assert!(satisfiable_all(&d, &[&pa, &pc], DEFAULT_BUDGET)
            .unwrap()
            .is_none());
    }

    #[test]
    fn match_sets_enumeration() {
        let d = dtd("root r\nr -> a?, b?");
        let pa = pat("r/a");
        let pb = pat("r/b");
        let sets = achievable_match_sets(&d, &[&pa, &pb], DEFAULT_BUDGET).unwrap();
        let js: BTreeSet<BTreeSet<usize>> = sets.iter().map(|(j, _)| j.clone()).collect();
        let expect: BTreeSet<BTreeSet<usize>> = [
            BTreeSet::new(),
            BTreeSet::from([0]),
            BTreeSet::from([1]),
            BTreeSet::from([0, 1]),
        ]
        .into_iter()
        .collect();
        assert_eq!(js, expect);
        // Each witness realises exactly its match set.
        for (j, w) in &sets {
            assert!(d.conforms(w));
            assert_eq!(eval::matches(w, &pa), j.contains(&0));
            assert_eq!(eval::matches(w, &pb), j.contains(&1));
        }
    }

    #[test]
    fn forced_match_set() {
        // b is mandatory: the empty match set is NOT achievable.
        let d = dtd("root r\nr -> b");
        let pb = pat("r/b");
        let sets = achievable_match_sets(&d, &[&pb], DEFAULT_BUDGET).unwrap();
        let js: Vec<BTreeSet<usize>> = sets.into_iter().map(|(j, _)| j).collect();
        assert_eq!(js, vec![BTreeSet::from([0])]);
    }

    #[test]
    fn recursive_dtd_descendant() {
        let d = dtd("root r\nr -> a\na -> a?, b?\nb -> ");
        let p = pat("r//b");
        let w = satisfiable(&d, &p, DEFAULT_BUDGET)
            .unwrap()
            .expect("satisfiable");
        assert!(d.conforms(&w));
        assert!(eval::matches(&w, &p));
    }

    #[test]
    fn budget_exhaustion_reports() {
        let d = dtd(D1);
        let p = pat("r//course(c)");
        let err = satisfiable(&d, &p, 2).unwrap_err();
        assert_eq!(err.budget, 2);
        assert!(err.states_explored > 2);
        let msg = err.to_string();
        assert!(msg.contains("pattern satisfiability"), "{msg}");
        assert!(msg.contains("budget of 2"), "{msg}");
    }

    #[test]
    fn negation_satisfiability_open_problem() {
        let d = dtd("root r\nr -> a?, b?, c?");
        let pa = pat("r/a");
        let pb = pat("r/b");
        let pc = pat("r/c");
        // Match a and b but not c.
        let w = satisfiable_with_negations(&d, &[&pa, &pb], &[&pc], DEFAULT_BUDGET)
            .unwrap()
            .expect("satisfiable");
        assert!(crate::eval::matches(&w, &pa));
        assert!(crate::eval::matches(&w, &pb));
        assert!(!crate::eval::matches(&w, &pc));
        // Matching a without matching the wildcard child test is impossible.
        let any_child = pat("r/_");
        assert!(
            satisfiable_with_negations(&d, &[&pa], &[&any_child], DEFAULT_BUDGET)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn containment_and_equivalence() {
        let d = dtd("root r\nr -> a*\na -> b?\nb @ v");
        // a with a b-child implies a exists.
        assert!(contained_in(&d, &pat("r/a/b(x)"), &pat("r/a"), DEFAULT_BUDGET).unwrap());
        assert!(!contained_in(&d, &pat("r/a"), &pat("r/a/b(x)"), DEFAULT_BUDGET).unwrap());
        // Under this DTD, //b and a/b are equivalent (b only under a).
        assert!(equivalent(&d, &pat("r//b(x)"), &pat("r/a/b(x)"), DEFAULT_BUDGET).unwrap());
        // Structural containment uses the DTD: every a-child is matched by
        // the wildcard child test.
        assert!(contained_in(&d, &pat("r/a"), &pat("r/_"), DEFAULT_BUDGET).unwrap());
    }

    #[test]
    fn sat_cache_repeated_probes() {
        let d = dtd(D1);
        let cache = SatCache::new(&d);
        let p = pat("r//course(c)");
        let q = pat("r//teach[//student(s)]");
        for _ in 0..3 {
            assert!(cache.satisfiable(&p, DEFAULT_BUDGET).unwrap().is_some());
            assert!(cache.satisfiable(&q, DEFAULT_BUDGET).unwrap().is_none());
        }
        // Cached witnesses still conform and match.
        let w = cache.satisfiable(&p, DEFAULT_BUDGET).unwrap().unwrap();
        assert!(d.conforms(&w));
        assert!(eval::matches(&w, &p));
    }

    #[test]
    fn nr_satisfiability_agrees_with_engine() {
        let d = dtd("root r
             r -> a, b*, c?
             a -> d?
             b -> e
             c @ v
             e @ w");
        for (text, expect) in [
            ("r/a", true),
            ("r/a/d", true),
            ("r//d", true),
            ("r[a, b[e(x)], c(y)]", true),
            ("r//e(x)", true),
            ("r/e(x)", false), // e is not a child of r
            ("r//c(x)", true),
            ("r/c(x, y)", false), // arity mismatch
            ("r[//d, //e(x)]", true),
            ("r/b/d", false), // d not under b
            ("_[a]", true),   // wildcard root still sits at r
        ] {
            let pat = parse(text).unwrap();
            let fast = satisfiable_nr(&d, &pat).expect("inside fragment");
            let slow = satisfiable(&d, &pat, DEFAULT_BUDGET).unwrap().is_some();
            assert_eq!(fast, slow, "{text}");
            assert_eq!(fast, expect, "{text}");
        }
    }

    #[test]
    fn nr_satisfiability_rejects_out_of_fragment() {
        let d = dtd("root r
r -> a, b");
        assert!(satisfiable_nr(&d, &pat("r[a -> b]")).is_none());
        assert!(satisfiable_nr(&d, &pat("r[a ->* b]")).is_none());
        let not_nr = dtd("root r
r -> a|b");
        assert!(satisfiable_nr(&not_nr, &pat("r/a")).is_none());
    }

    #[test]
    fn deep_descendant_nesting() {
        let d = dtd("root r\nr -> a\na -> a?, b?\nb -> c\nc @ v");
        let p = pat("r//a[//c(x)]");
        let w = satisfiable(&d, &p, DEFAULT_BUDGET).unwrap().expect("sat");
        assert!(eval::matches(&w, &p));
        // //c directly under r also requires the a/b chain.
        let q = pat("r[//c(x)]");
        assert!(satisfiable(&d, &q, DEFAULT_BUDGET).unwrap().is_some());
    }
}
