//! The compiled type-fixpoint engine (DESIGN.md §8).
//!
//! Same semantics as [`crate::sat::reference`] — the least fixpoint of
//! achievable `(label, type)` pairs over a DTD — with the operational
//! structure rebuilt for speed:
//!
//! * **Interning.** Labels become dense `u32` ids ([`DtdIndex`]), type
//!   bitsets are hash-consed into `u32` type ids, and achievable pairs are
//!   keyed `(label_id, type_id)` — the reference engine's linear
//!   `PairInfo` scans and `BTreeSet` machine states become hash lookups
//!   over flat `[u64]` words.
//! * **Flat machine states.** A per-label exploration state is one
//!   contiguous word slice `[NFA subset | sequence positions | seen
//!   components]`. Stepping is bitwise: the DTD production NFA is grouped
//!   by symbol (`DenseNfa`), each sequence acceptor advances with one
//!   shift-and-mask per word (`(cur & gap) | ((cur & match) << 1)`), and
//!   `seen` is a word-wise OR with the symbol's type.
//! * **Worklist fixpoint.** Instead of re-sweeping the whole alphabet
//!   until nothing grows, each label keeps its exploration state
//!   persistently (`LabelExp`): when new pairs arrive, already-settled
//!   states catch up on just the new symbols and only freshly created
//!   states pay the full expansion. A label re-enters the worklist only
//!   when a new pair's label occurs in its production (`dependents`).
//! * **Gated parallel frontier.** Rounds with enough dirty labels fan the
//!   per-label expansions out over `xmlmap_par` worker threads (each label
//!   behind its own mutex, results merged deterministically in label
//!   order). Gated on alphabet size so small schemas never pay thread
//!   overhead — the same policy as the eval kernel's ≥256-node gate.
//!
//! [`SatCache`] is the repeated-probe entry point: it compiles the DTD
//! once, interns each pattern set's closure once, and memoizes complete
//! match-set results, so N probes against one schema pay compilation a
//! single time. `core::consistency`, `core::abscons`, `core::compose` and
//! `core::bounded` all hold one per call tree.

use crate::ast::{LabelTest, ListItem, Pattern, SeqOp};
use crate::sat::BudgetExceeded;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use xmlmap_codec::{CodecError, Decoder, Encoder};
use xmlmap_dtd::Dtd;

use xmlmap_trees::{Tree, Value};

/// Parallel rounds only when the alphabet is at least this large…
const PAR_LABEL_GATE: usize = 16;
/// …and at least this many labels are dirty in the round.
const PAR_DIRTY_GATE: usize = 4;

use xmlmap_dtd::index::{get_bit, set_bit};
/// Re-exported from `xmlmap-dtd`, where the per-DTD compiled artifact now
/// lives (the streaming validator shares it); kept here so existing
/// `sat_compiled::DtdIndex` paths continue to work.
pub use xmlmap_dtd::index::{DenseNfa, DtdIndex};

/// Flattened list item of a compiled pattern node.
enum CItem {
    /// `//π`: the seen-bit of the referenced node's `SubtreeMatch`.
    Desc(usize),
    /// A sequence item, indexing into [`CompiledPats::seqs`].
    Seq(usize),
}

struct PatNode {
    items: Vec<CItem>,
}

/// A compiled sequence acceptor. Positions `0..=n` live in a bitset of
/// `words` words at `offset` within the state's sequence area; position `n`
/// means "complete".
struct CSeq {
    members: Vec<usize>,
    n: usize,
    words: usize,
    offset: usize,
    /// Positions that survive a non-matching symbol: `0` (leading Σ*),
    /// `s` with `ops[s-1] == →*`, and `n` (trailing Σ*).
    gap_mask: Box<[u64]>,
}

/// The per-pattern-set compiled closure: flattened nodes, sequence
/// acceptors with precomputed gap masks, and per-label candidate lists
/// (label test + arity prechecked against the [`DtdIndex`]).
pub struct CompiledPats {
    nodes: Vec<PatNode>,
    /// Root pattern-node id of each input pattern.
    roots: Vec<usize>,
    /// `(pid, subtree-bit)` for every `//`-referenced node.
    desc_bits: Vec<(usize, usize)>,
    comp_words: usize,
    seqs: Vec<CSeq>,
    seq_area_words: usize,
    /// Per label id: pattern nodes whose label test and arity allow it.
    cand: Vec<Vec<u32>>,
}

impl CompiledPats {
    /// Flattens `patterns` against `idx`: closure nodes, sequence
    /// acceptors with gap masks, and per-label candidate lists.
    pub fn new(idx: &DtdIndex, patterns: &[&Pattern]) -> CompiledPats {
        struct RawSeq {
            members: Vec<usize>,
            ops: Vec<SeqOp>,
        }
        let mut tests: Vec<(LabelTest, usize)> = Vec::new(); // (label test, arity)
        let mut items: Vec<Vec<(bool, usize)>> = Vec::new(); // (is_desc, target)
        let mut raw_seqs: Vec<RawSeq> = Vec::new();
        let mut desc_pids: Vec<usize> = Vec::new();

        fn flatten(
            p: &Pattern,
            tests: &mut Vec<(LabelTest, usize)>,
            items: &mut Vec<Vec<(bool, usize)>>,
            raw_seqs: &mut Vec<RawSeq>,
            desc_pids: &mut Vec<usize>,
        ) -> usize {
            let pid = tests.len();
            tests.push((p.label.clone(), p.vars.len()));
            items.push(Vec::new());
            let mut my_items = Vec::new();
            for item in &p.list {
                match item {
                    ListItem::Descendant(sub) => {
                        let sub_pid = flatten(sub, tests, items, raw_seqs, desc_pids);
                        desc_pids.push(sub_pid);
                        my_items.push((true, sub_pid));
                    }
                    ListItem::Seq { members, ops } => {
                        let member_pids = members
                            .iter()
                            .map(|m| flatten(m, tests, items, raw_seqs, desc_pids))
                            .collect();
                        raw_seqs.push(RawSeq {
                            members: member_pids,
                            ops: ops.clone(),
                        });
                        my_items.push((false, raw_seqs.len() - 1));
                    }
                }
            }
            items[pid] = my_items;
            pid
        }

        let roots: Vec<usize> = patterns
            .iter()
            .map(|p| flatten(p, &mut tests, &mut items, &mut raw_seqs, &mut desc_pids))
            .collect();

        // Components: NodeMatch(pid) = bit pid, then one SubtreeMatch bit
        // per `//`-referenced pid (same layout as the reference engine).
        let n_nodes = tests.len();
        let mut subtree_bit: HashMap<usize, usize> = HashMap::new();
        for pid in desc_pids {
            let next = n_nodes + subtree_bit.len();
            subtree_bit.entry(pid).or_insert(next);
        }
        let n_comps = n_nodes + subtree_bit.len();
        let mut desc_bits: Vec<(usize, usize)> =
            subtree_bit.iter().map(|(&p, &b)| (p, b)).collect();
        desc_bits.sort_unstable();

        let mut seqs = Vec::with_capacity(raw_seqs.len());
        let mut offset = 0usize;
        for raw in raw_seqs {
            let n = raw.members.len();
            let words = (n + 1).div_ceil(64);
            let mut gap_mask = vec![0u64; words];
            set_bit(&mut gap_mask, 0);
            set_bit(&mut gap_mask, n);
            for (s, op) in raw.ops.iter().enumerate() {
                if *op == SeqOp::Following {
                    set_bit(&mut gap_mask, s + 1);
                }
            }
            seqs.push(CSeq {
                members: raw.members,
                n,
                words,
                offset,
                gap_mask: gap_mask.into_boxed_slice(),
            });
            offset += words;
        }

        let nodes: Vec<PatNode> = items
            .into_iter()
            .map(|its| PatNode {
                items: its
                    .into_iter()
                    .map(|(is_desc, t)| {
                        if is_desc {
                            CItem::Desc(subtree_bit[&t])
                        } else {
                            CItem::Seq(t)
                        }
                    })
                    .collect(),
            })
            .collect();

        let cand: Vec<Vec<u32>> = idx
            .labels()
            .iter()
            .enumerate()
            .map(|(lid, label)| {
                tests
                    .iter()
                    .enumerate()
                    .filter(|(_, (test, arity))| {
                        // An empty variable tuple imposes no arity
                        // requirement (mirrors `eval`).
                        test.accepts(label) && (*arity == 0 || *arity == idx.arities()[lid])
                    })
                    .map(|(pid, _)| pid as u32)
                    .collect()
            })
            .collect();

        CompiledPats {
            nodes,
            roots,
            desc_bits,
            comp_words: n_comps.div_ceil(64),
            seqs,
            seq_area_words: offset,
            cand,
        }
    }

    /// Approximate heap footprint in bytes (pattern nodes, sequence
    /// acceptors, candidate lists).
    pub fn approx_bytes(&self) -> u64 {
        (self
            .nodes
            .iter()
            .map(|n| n.items.capacity() * std::mem::size_of::<CItem>())
            .sum::<usize>()
            + self.roots.capacity() * 8
            + self.desc_bits.capacity() * 16
            + self
                .seqs
                .iter()
                .map(|s| s.members.capacity() * 8 + s.gap_mask.len() * 8 + 32)
                .sum::<usize>()
            + self.cand.iter().map(|c| c.capacity() * 4).sum::<usize>()) as u64
    }
}

/// An interned achievable pair.
struct Pair {
    label: u32,
    type_id: u32,
    /// Children realisation: ids of (strictly older) achievable pairs.
    word: Vec<u32>,
    /// Per-sequence member-match masks for this pair's type: bit `s` of
    /// sequence `k` iff the type contains `NodeMatch(members[s])`.
    /// Lets [`EngineCore::step`] advance every acceptor bitwise.
    seq_masks: Box<[u64]>,
}

/// A pair discovered during a round, before sequential interning.
struct NewPair {
    label: u32,
    typ: Box<[u64]>,
    word: Vec<u32>,
}

fn compute_seq_masks(pats: &CompiledPats, typ: &[u64]) -> Box<[u64]> {
    let mut masks = vec![0u64; pats.seq_area_words];
    for seq in &pats.seqs {
        for (s, &pid) in seq.members.iter().enumerate() {
            if get_bit(typ, pid) {
                masks[seq.offset + s / 64] |= 1 << (s % 64);
            }
        }
    }
    masks.into_boxed_slice()
}

/// Shared read-only (within a round) engine state.
struct EngineCore {
    idx: Arc<DtdIndex>,
    pats: Arc<CompiledPats>,
    /// Hash-consed type bitsets.
    types: Vec<Box<[u64]>>,
    type_index: HashMap<Box<[u64]>, u32>,
    pairs: Vec<Pair>,
    pair_index: HashMap<(u32, u32), u32>,
    states_explored: AtomicUsize,
    budget: usize,
    context: String,
}

impl EngineCore {
    /// Counts one state settlement against the budget.
    fn bump(&self) -> Result<(), BudgetExceeded> {
        let n = self.states_explored.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.budget {
            Err(BudgetExceeded {
                budget: self.budget,
                states_explored: n,
                context: self.context.clone(),
            })
        } else {
            Ok(())
        }
    }

    fn accepting(&self, nfa: &DenseNfa, state: &[u64]) -> bool {
        state[..nfa.words()]
            .iter()
            .zip(nfa.accepting().iter())
            .any(|(s, a)| s & a != 0)
    }

    /// One machine transition on `pair`, writing into `out`. Returns false
    /// when the production NFA subset empties (dead word prefix).
    fn step(&self, nfa: &DenseNfa, state: &[u64], pair: &Pair, out: &mut Vec<u64>) -> bool {
        let edges = match nfa.edges_for(pair.label) {
            Some(e) => e,
            None => return false,
        };
        out.clear();
        out.resize(state.len(), 0);
        let mut any = false;
        for &(from, to) in edges {
            if get_bit(state, from as usize) {
                set_bit(out, to as usize);
                any = true;
            }
        }
        if !any {
            return false;
        }
        let pats = &*self.pats;
        for seq in &pats.seqs {
            let o = nfa.words() + seq.offset;
            let mut carry = 0u64;
            for i in 0..seq.words {
                let cur = state[o + i];
                let matched = cur & pair.seq_masks[seq.offset + i];
                out[o + i] = (cur & seq.gap_mask[i]) | (matched << 1) | carry;
                carry = matched >> 63;
            }
        }
        let typ = &self.types[pair.type_id as usize];
        let seen = nfa.words() + pats.seq_area_words;
        for w in 0..pats.comp_words {
            out[seen + w] = state[seen + w] | typ[w];
        }
        true
    }

    /// The type induced at an `lid`-labelled node whose children produced
    /// machine state `state`.
    fn induced_type(&self, lid: u32, nfa_words: usize, state: &[u64]) -> Box<[u64]> {
        let pats = &*self.pats;
        let seen = nfa_words + pats.seq_area_words;
        let mut typ = vec![0u64; pats.comp_words];
        for &pid in &pats.cand[lid as usize] {
            let pid = pid as usize;
            let all_items = pats.nodes[pid].items.iter().all(|item| match item {
                CItem::Desc(bit) => get_bit(&state[seen..], *bit),
                CItem::Seq(k) => {
                    let seq = &pats.seqs[*k];
                    get_bit(&state[nfa_words + seq.offset..], seq.n)
                }
            });
            if all_items {
                set_bit(&mut typ, pid);
            }
        }
        // SubtreeMatch: here or in some child's subtree.
        for &(pid, bit) in &pats.desc_bits {
            if get_bit(&typ, pid) || get_bit(&state[seen..], bit) {
                set_bit(&mut typ, bit);
            }
        }
        typ.into_boxed_slice()
    }

    fn build_witness(&self, pair_id: usize) -> Tree {
        fn attach(core: &EngineCore, tree: &mut Tree, at: xmlmap_trees::NodeId, pid: usize) {
            for &child in &core.pairs[pid].word {
                let info = &core.pairs[child as usize];
                let label = &core.idx.labels()[info.label as usize];
                let node = tree.add_child(
                    at,
                    label.clone(),
                    core.idx
                        .dtd()
                        .attrs(label)
                        .iter()
                        .map(|a| (a.clone(), Value::str("d"))),
                );
                attach(core, tree, node, child as usize);
            }
        }
        let info = &self.pairs[pair_id];
        let label = &self.idx.labels()[info.label as usize];
        let mut tree = Tree::with_root_attrs(
            label.clone(),
            self.idx
                .dtd()
                .attrs(label)
                .iter()
                .map(|a| (a.clone(), Value::str("d"))),
        );
        attach(self, &mut tree, Tree::ROOT, pair_id);
        tree
    }
}

/// Persistent per-label exploration state for the worklist fixpoint.
struct LabelExp {
    lid: u32,
    stride: usize,
    /// Flat machine states, `stride` words each.
    states: Vec<u64>,
    index: HashMap<Box<[u64]>, u32>,
    /// `(previous state, pair id)`; `(MAX, MAX)` marks the initial state.
    parent: Vec<(u32, u32)>,
    /// States already expanded against `relevant[..]` as of `pairs_done`.
    settled: usize,
    /// Global pair count this label has caught up with.
    pairs_done: usize,
    /// Pairs whose label occurs in this label's production.
    relevant: Vec<u32>,
    /// Types already emitted from this label (across rounds).
    emitted: HashSet<Box<[u64]>>,
}

impl LabelExp {
    fn new(lid: u32, stride: usize) -> LabelExp {
        LabelExp {
            lid,
            stride,
            states: Vec::new(),
            index: HashMap::new(),
            parent: Vec::new(),
            settled: 0,
            pairs_done: 0,
            relevant: Vec::new(),
            emitted: HashSet::new(),
        }
    }

    fn insert_state(
        &mut self,
        core: &EngineCore,
        nfa: &DenseNfa,
        key: Box<[u64]>,
        parent: (u32, u32),
        out: &mut Vec<NewPair>,
    ) {
        let ni = self.parent.len() as u32;
        self.states.extend_from_slice(&key);
        self.parent.push(parent);
        // Emission is decided at creation: acceptance and the induced type
        // depend only on the state itself.
        if core.accepting(nfa, &key) {
            let typ = core.induced_type(self.lid, nfa.words(), &key);
            let known = core
                .type_index
                .get(&typ)
                .is_some_and(|tid| core.pair_index.contains_key(&(self.lid, *tid)));
            if !known && self.emitted.insert(typ.clone()) {
                let mut word = Vec::new();
                let mut cur = ni as usize;
                loop {
                    let (prev, pid) = self.parent[cur];
                    if pid == u32::MAX {
                        break;
                    }
                    word.push(pid);
                    cur = prev as usize;
                }
                word.reverse();
                out.push(NewPair {
                    label: self.lid,
                    typ,
                    word,
                });
            }
        }
        self.index.insert(key, ni);
    }

    fn try_step(
        &mut self,
        core: &EngineCore,
        nfa: &DenseNfa,
        si: usize,
        pid: u32,
        scratch: &mut Vec<u64>,
        out: &mut Vec<NewPair>,
    ) {
        let pair = &core.pairs[pid as usize];
        let alive = {
            let state = &self.states[si * self.stride..(si + 1) * self.stride];
            core.step(nfa, state, pair, scratch)
        };
        if alive && !self.index.contains_key(scratch.as_slice()) {
            self.insert_state(
                core,
                nfa,
                scratch.clone().into_boxed_slice(),
                (si as u32, pid),
                out,
            );
        }
    }
}

/// Expands one label: catch settled states up on pairs added since the
/// label's last round, then settle every fresh state against all relevant
/// pairs. Returns the pairs discovered (interned later, sequentially).
fn expand(core: &EngineCore, exp: &mut LabelExp) -> Result<Vec<NewPair>, BudgetExceeded> {
    let nfa = &core.idx.nfas()[exp.lid as usize];
    let mut out = Vec::new();

    if exp.parent.is_empty() {
        let mut init = vec![0u64; exp.stride];
        init[0] = 1; // NFA start state 0
        for seq in &core.pats.seqs {
            set_bit(&mut init[nfa.words()..], seq.offset * 64); // position 0
        }
        exp.insert_state(
            core,
            nfa,
            init.into_boxed_slice(),
            (u32::MAX, u32::MAX),
            &mut out,
        );
    }

    let first_new = exp.relevant.len();
    for pid in exp.pairs_done..core.pairs.len() {
        if nfa.has_sym(core.pairs[pid].label) {
            exp.relevant.push(pid as u32);
        }
    }
    exp.pairs_done = core.pairs.len();

    let mut scratch: Vec<u64> = Vec::new();

    // Phase 1: settled states see only the newly arrived pairs.
    if first_new < exp.relevant.len() {
        for si in 0..exp.settled {
            core.bump()?;
            for ri in first_new..exp.relevant.len() {
                let pid = exp.relevant[ri];
                exp.try_step(core, nfa, si, pid, &mut scratch, &mut out);
            }
        }
    }

    // Phase 2: settle fresh states (including ones created above) against
    // the full relevant list.
    while exp.settled < exp.parent.len() {
        let si = exp.settled;
        exp.settled += 1;
        core.bump()?;
        for ri in 0..exp.relevant.len() {
            let pid = exp.relevant[ri];
            exp.try_step(core, nfa, si, pid, &mut scratch, &mut out);
        }
    }
    Ok(out)
}

/// The compiled satisfiability engine. One-shot API mirror of the
/// reference [`crate::sat::TypeEngine`]; for repeated probes against one
/// DTD use [`SatCache`].
pub struct SatEngine {
    core: EngineCore,
    exps: Vec<Mutex<LabelExp>>,
    done: bool,
}

impl SatEngine {
    /// Compiles `dtd` and `patterns` from scratch. `budget` bounds the
    /// total number of machine-state settlements.
    pub fn new(dtd: &Dtd, patterns: &[&Pattern], budget: usize) -> SatEngine {
        let idx = Arc::new(DtdIndex::new(dtd));
        let pats = Arc::new(CompiledPats::new(&idx, patterns));
        SatEngine::from_parts(idx, pats, budget)
    }

    /// Builds an engine over pre-compiled artifacts (the [`SatCache`] path).
    pub fn from_parts(idx: Arc<DtdIndex>, pats: Arc<CompiledPats>, budget: usize) -> SatEngine {
        let exps = (0..idx.labels().len())
            .map(|lid| {
                let stride = idx.nfas()[lid].words() + pats.seq_area_words + pats.comp_words;
                Mutex::new(LabelExp::new(lid as u32, stride))
            })
            .collect();
        SatEngine {
            core: EngineCore {
                idx,
                pats,
                types: Vec::new(),
                type_index: HashMap::new(),
                pairs: Vec::new(),
                pair_index: HashMap::new(),
                states_explored: AtomicUsize::new(0),
                budget,
                context: "type-fixpoint".to_string(),
            },
            exps,
            done: false,
        }
    }

    /// Labels budget overruns with an operation description.
    pub fn with_context(mut self, context: &str) -> SatEngine {
        self.core.context = context.to_string();
        self
    }

    /// Runs the worklist fixpoint to completion.
    pub fn run(&mut self) -> Result<(), BudgetExceeded> {
        if self.done {
            return Ok(());
        }
        let n_labels = self.core.idx.labels().len();
        let mut dirty: Vec<u32> = (0..n_labels as u32).collect();
        while !dirty.is_empty() {
            let core = &self.core;
            let exps = &self.exps;
            let round = |&lid: &u32| {
                let mut exp = exps[lid as usize].lock().unwrap();
                expand(core, &mut exp)
            };
            let use_par = n_labels >= PAR_LABEL_GATE
                && dirty.len() >= PAR_DIRTY_GATE
                && xmlmap_par::worker_count() > 1;
            let results = if use_par {
                xmlmap_par::par_map(&dirty, round)
            } else {
                dirty.iter().map(round).collect()
            };
            let mut fresh: Vec<NewPair> = Vec::new();
            for r in results {
                fresh.extend(r?);
            }
            // Sequential, label-ordered merge keeps pair ids deterministic
            // (par_map preserves input order).
            let changed = self.intern(fresh);
            let mut next: Vec<u32> = changed
                .iter()
                .flat_map(|&lid| self.core.idx.dependents(lid).iter().copied())
                .collect();
            next.sort_unstable();
            next.dedup();
            dirty = next;
        }
        self.done = true;
        Ok(())
    }

    /// Interns a round's discoveries; returns the labels that gained pairs.
    fn intern(&mut self, fresh: Vec<NewPair>) -> Vec<u32> {
        let core = &mut self.core;
        let mut changed = Vec::new();
        for np in fresh {
            let tid = match core.type_index.get(&np.typ) {
                Some(&t) => t,
                None => {
                    let t = core.types.len() as u32;
                    core.type_index.insert(np.typ.clone(), t);
                    core.types.push(np.typ.clone());
                    t
                }
            };
            if core.pair_index.contains_key(&(np.label, tid)) {
                continue;
            }
            let seq_masks = compute_seq_masks(&core.pats, &np.typ);
            let id = core.pairs.len() as u32;
            core.pair_index.insert((np.label, tid), id);
            core.pairs.push(Pair {
                label: np.label,
                type_id: tid,
                word: np.word,
                seq_masks,
            });
            changed.push(np.label);
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// All achievable root match sets with witnesses (see [`crate::sat`]).
    pub fn root_match_sets(&mut self) -> Result<Vec<(BTreeSet<usize>, Tree)>, BudgetExceeded> {
        self.run()?;
        let core = &self.core;
        let mut out: Vec<(BTreeSet<usize>, Tree)> = Vec::new();
        let mut seen: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for (id, pair) in core.pairs.iter().enumerate() {
            if pair.label != core.idx.root() {
                continue;
            }
            let typ = &core.types[pair.type_id as usize];
            let set: BTreeSet<usize> = core
                .pats
                .roots
                .iter()
                .enumerate()
                .filter(|(_, &pid)| get_bit(typ, pid))
                .map(|(i, _)| i)
                .collect();
            if seen.insert(set.clone()) {
                out.push((set, core.build_witness(id)));
            }
        }
        Ok(out)
    }

    /// Is there a `T ⊨ D` matching **all** input patterns at the root?
    pub fn satisfiable_conj(&mut self) -> Result<Option<Tree>, BudgetExceeded> {
        let n = self.core.pats.roots.len();
        let sets = self.root_match_sets()?;
        Ok(sets
            .into_iter()
            .find(|(set, _)| set.len() == n)
            .map(|(_, tree)| tree))
    }

    /// Total machine states settled so far (diagnostics for benches).
    pub fn states_explored(&self) -> usize {
        self.core.states_explored.load(Ordering::Relaxed)
    }
}

type MatchSets = Vec<(BTreeSet<usize>, Tree)>;

/// Per-DTD satisfiability cache: the DTD is compiled once, each pattern
/// set's closure is interned once (keyed by the patterns' display strings,
/// which round-trip), and complete match-set results are memoized. Budget
/// overruns are *not* cached — a retry with a larger budget recomputes.
///
/// Shared by the `crates/core` consistency procedures so that the many
/// probes of one `CONS`/`ABSCONS°`/`CONSCOMP` run (and repeated runs over
/// one schema) pay compilation a single time.
pub struct SatCache {
    idx: Arc<DtdIndex>,
    context: String,
    pats: Mutex<HashMap<Vec<String>, Arc<CompiledPats>>>,
    results: Mutex<HashMap<Vec<String>, Arc<MatchSets>>>,
}

impl SatCache {
    /// Compiles `dtd` into a fresh, empty cache.
    pub fn new(dtd: &Dtd) -> SatCache {
        SatCache {
            idx: Arc::new(DtdIndex::new(dtd)),
            context: "cached type-fixpoint probe".to_string(),
            pats: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
        }
    }

    /// Labels budget overruns from this cache with an operation description.
    pub fn with_context(mut self, context: &str) -> SatCache {
        self.context = context.to_string();
        self
    }

    /// The DTD this cache answers probes against.
    pub fn dtd(&self) -> &Dtd {
        self.idx.dtd()
    }

    /// All achievable root match sets for `patterns`, memoized.
    pub fn achievable_match_sets(
        &self,
        patterns: &[&Pattern],
        budget: usize,
    ) -> Result<Arc<MatchSets>, BudgetExceeded> {
        let key: Vec<String> = patterns.iter().map(|p| p.to_string()).collect();
        if let Some(hit) = self.results.lock().unwrap().get(&key) {
            return Ok(hit.clone());
        }
        let pats = {
            let mut map = self.pats.lock().unwrap();
            map.entry(key.clone())
                .or_insert_with(|| Arc::new(CompiledPats::new(&self.idx, patterns)))
                .clone()
        };
        let mut engine =
            SatEngine::from_parts(self.idx.clone(), pats, budget).with_context(&self.context);
        let sets = Arc::new(engine.root_match_sets()?);
        self.results.lock().unwrap().insert(key, sets.clone());
        Ok(sets)
    }

    /// Joint satisfiability of a pattern conjunction, memoized.
    pub fn satisfiable_all(
        &self,
        patterns: &[&Pattern],
        budget: usize,
    ) -> Result<Option<Tree>, BudgetExceeded> {
        let n = patterns.len();
        Ok(self
            .achievable_match_sets(patterns, budget)?
            .iter()
            .find(|(set, _)| set.len() == n)
            .map(|(_, tree)| tree.clone()))
    }

    /// Single-pattern satisfiability, memoized.
    pub fn satisfiable(
        &self,
        pattern: &Pattern,
        budget: usize,
    ) -> Result<Option<Tree>, BudgetExceeded> {
        self.satisfiable_all(&[pattern], budget)
    }

    /// Serializes the *compiled artifact* — the [`DtdIndex`] — as flat
    /// bytes. The runtime memo tables (per-pattern-set closures and match
    /// sets) are deliberately not persisted: they are keyed by query, not
    /// by schema, and rebuild on demand.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.idx.encode(&mut e);
        e.finish()
    }

    /// Rebuilds a cache around a deserialized [`DtdIndex`], with empty
    /// memo tables and the default budget-error context (callers chain
    /// [`SatCache::with_context`] as with a fresh compile).
    pub fn from_bytes(bytes: &[u8]) -> Result<SatCache, CodecError> {
        let mut d = Decoder::new(bytes);
        let idx = DtdIndex::decode(&mut d)?;
        d.expect_end()?;
        Ok(SatCache {
            idx: Arc::new(idx),
            context: "cached type-fixpoint probe".to_string(),
            pats: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
        })
    }

    /// Approximate heap footprint in bytes: the compiled index plus both
    /// runtime memo tables (whose match-set witnesses can dwarf the index
    /// on heavily probed schemas — which is exactly what eviction needs to
    /// see).
    pub fn approx_bytes(&self) -> u64 {
        let key_bytes =
            |key: &Vec<String>| key.iter().map(|s| s.len() as u64 + 24).sum::<u64>() + 24;
        let mut total = self.idx.approx_bytes() + self.context.len() as u64;
        for (key, pats) in self.pats.lock().unwrap().iter() {
            total += key_bytes(key) + pats.approx_bytes();
        }
        for (key, sets) in self.results.lock().unwrap().iter() {
            total += key_bytes(key);
            for (set, witness) in sets.iter() {
                total += set.len() as u64 * 16 + witness.approx_bytes() + 48;
            }
        }
        total
    }
}
