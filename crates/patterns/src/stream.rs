//! Streaming pattern membership for the downward fragment (DESIGN.md §8.7).
//!
//! [`StreamPattern`] compiles a pattern into a *streaming plan* and
//! [`StreamMatcher`] evaluates it over the open/close events of a SAX pass
//! in O(depth · |π|) memory: each open element carries three per-depth
//! *obligation bitsets* over the pattern's flattened nodes (the same
//! post-order array and interned-variable tuples as the arena kernel in
//! [`crate::compiled`]) —
//!
//! * `local_ok` — the node's label test, arity, and within-tuple repeated
//!   variables hold here (computed at the open tag);
//! * `child_ok` — some already-closed child witnessed this pattern node;
//! * `sub_any` — … somewhere in a closed child's subtree.
//!
//! At a close tag, `matched = local_ok ∧ (child obligations ⊆ child_ok) ∧
//! (descendant obligations ⊆ sub_any)` is one bitwise sweep, then folds into
//! the parent's `child_ok`/`sub_any`. The verdict is the root pattern bit
//! when the document root closes — identical to [`crate::eval::matches`].
//!
//! **Fragment boundary.** This bottom-up evaluation is *exact* (not an
//! approximation) precisely when subtree obligations are independent:
//!
//! * the sibling-order operators `→`/`→*` are out — placing a sequence
//!   needs the arena's left-to-right backtracking ([`UnstreamablePattern::SiblingOrder`]);
//! * a variable shared across *distinct* pattern nodes is out — a
//!   cross-node value join can relate arbitrarily distant subtrees, which
//!   O(depth) state cannot carry ([`UnstreamablePattern::SharedVariable`]).
//!
//! Wildcard, child (`/`), descendant (`//`), and variables repeated
//! *within* one tuple (a local equality test) all stream. Everything else
//! falls back to the arena engines with a clear diagnostic.
//!
//! [`StreamEnumerator`] extends the boolean acceptor to a *valuation
//! enumerator* (DESIGN.md §8.8): alongside the bitsets, each open element
//! carries the complete match tuples rooted in its already-closed
//! children, so every subtree's matches are emitted exactly when it
//! closes and state stays O(depth + live matches). The streamable
//! fragment makes this exact: variables partition across pattern nodes,
//! so a subtree match is a tuple over the subtree's own variables and
//! matches of independent obligations compose by Cartesian join.

use crate::ast::{Pattern, Var};
use crate::compiled::{CItem, CompiledPattern};
use std::cmp::Ordering;
use std::fmt;
use std::io::Read;
use xmlmap_dtd::index::{get_bit, set_bit};
use xmlmap_trees::{Name, SaxEvent, SaxReader, Value, XmlError};

/// Why a pattern cannot be evaluated in the streaming fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnstreamablePattern {
    /// The pattern uses `→` or `→*` (sibling order).
    SiblingOrder,
    /// The named variable occurs in two distinct pattern nodes.
    SharedVariable(Var),
}

impl fmt::Display for UnstreamablePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnstreamablePattern::SiblingOrder => write!(
                f,
                "pattern uses the sibling-order operators (-> / ->*); streaming \
                 evaluation covers only the downward fragment (/ and //) — \
                 use the arena evaluator"
            ),
            UnstreamablePattern::SharedVariable(v) => write!(
                f,
                "variable {v} is shared across pattern nodes; a cross-node \
                 value join cannot run in O(depth) memory — use the arena \
                 evaluator"
            ),
        }
    }
}

impl std::error::Error for UnstreamablePattern {}

/// One pattern node's streaming obligations, parallel to the compiled
/// kernel's post-order node array.
struct PlanNode {
    label: crate::ast::LabelTest,
    /// Required attribute count, or `None` when the tuple is empty (any
    /// arity matches — same rule as the arena kernel).
    arity: Option<usize>,
    /// Tuple positions that must carry equal values (within-node repeats).
    eq_pairs: Vec<(u32, u32)>,
    /// Pattern nodes that must match at some child.
    child_members: Vec<u32>,
    /// Pattern nodes that must match at some proper descendant.
    desc_members: Vec<u32>,
}

/// A pattern compiled for streaming evaluation: the arena kernel's
/// flattened nodes and interned variables, re-expressed as per-node
/// obligation lists. Compile once, run over any number of documents.
pub struct StreamPattern {
    pat: CompiledPattern,
    nodes: Vec<PlanNode>,
    /// Words per obligation bitset.
    words: usize,
    /// Per pattern node: the interned variable ids bound anywhere in its
    /// subtree (sorted, deduplicated). In the streamable fragment these
    /// sets partition the variables across sibling obligations, which is
    /// what lets [`StreamEnumerator`] compose subtree matches by copying
    /// exactly these tuple positions.
    sub_vars: Vec<Vec<u32>>,
}

impl StreamPattern {
    /// Compiles `pattern`, rejecting anything outside the streaming
    /// fragment with a diagnostic naming the offending feature.
    pub fn compile(pattern: &Pattern) -> Result<StreamPattern, UnstreamablePattern> {
        if pattern.uses_next_sibling() || pattern.uses_following_sibling() {
            return Err(UnstreamablePattern::SiblingOrder);
        }
        let pat = CompiledPattern::new(pattern);
        // A repeated variable is fine within one tuple, fatal across nodes.
        let mut owner: Vec<Option<usize>> = vec![None; pat.var_count()];
        for (pi, node) in pat.nodes.iter().enumerate() {
            for &id in &node.vars {
                match owner[id as usize] {
                    None => owner[id as usize] = Some(pi),
                    Some(prev) if prev == pi => {}
                    Some(_) => {
                        return Err(UnstreamablePattern::SharedVariable(
                            pat.vars()[id as usize].clone(),
                        ))
                    }
                }
            }
        }
        let nodes = pat
            .nodes
            .iter()
            .map(|node| {
                let mut eq_pairs = Vec::new();
                for i in 0..node.vars.len() {
                    for j in i + 1..node.vars.len() {
                        if node.vars[i] == node.vars[j] {
                            eq_pairs.push((i as u32, j as u32));
                        }
                    }
                }
                let mut child_members = Vec::new();
                let mut desc_members = Vec::new();
                for item in &node.items {
                    match item {
                        CItem::Seq { members, .. } => {
                            // With sibling ops rejected, every sequence is a
                            // single child obligation.
                            debug_assert_eq!(members.len(), 1);
                            child_members.push(members[0] as u32);
                        }
                        CItem::Descendant(d) => desc_members.push(*d as u32),
                    }
                }
                PlanNode {
                    label: node.label.clone(),
                    arity: (!node.vars.is_empty()).then_some(node.vars.len()),
                    eq_pairs,
                    child_members,
                    desc_members,
                }
            })
            .collect::<Vec<_>>();
        let words = nodes.len().div_ceil(64).max(1);
        // Subtree variable sets, bottom-up over the post-order node array
        // (children precede parents, so member sets are already final).
        let mut sub_vars: Vec<Vec<u32>> = Vec::with_capacity(pat.nodes.len());
        for node in &pat.nodes {
            let mut vs = node.vars.clone();
            for item in &node.items {
                match item {
                    CItem::Seq { members, .. } => vs.extend_from_slice(&sub_vars[members[0]]),
                    CItem::Descendant(d) => vs.extend_from_slice(&sub_vars[*d]),
                }
            }
            vs.sort_unstable();
            vs.dedup();
            sub_vars.push(vs);
        }
        Ok(StreamPattern {
            pat,
            nodes,
            words,
            sub_vars,
        })
    }

    /// The underlying compiled kernel (interned variables etc.).
    pub fn compiled(&self) -> &CompiledPattern {
        &self.pat
    }

    /// Approximate heap footprint in bytes (for cache accounting).
    pub fn approx_bytes(&self) -> u64 {
        self.pat.approx_bytes()
            + self
                .nodes
                .iter()
                .map(|n| {
                    64 + n.eq_pairs.capacity() as u64 * 8
                        + n.child_members.capacity() as u64 * 4
                        + n.desc_members.capacity() as u64 * 4
                })
                .sum::<u64>()
            + self
                .sub_vars
                .iter()
                .map(|vs| 24 + vs.capacity() as u64 * 4)
                .sum::<u64>()
    }
}

/// Per-depth obligation bitsets for one open element.
struct MFrame {
    local_ok: Vec<u64>,
    child_ok: Vec<u64>,
    sub_any: Vec<u64>,
}

/// A push-based streaming membership cursor over one document.
///
/// Feed [`open`](StreamMatcher::open)/[`close`](StreamMatcher::close) in
/// document order, then read the verdict from
/// [`finish`](StreamMatcher::finish). Attribute values are paired with the
/// pattern tuple positionally, exactly like the arena evaluator — callers
/// comparing against normalised trees should feed attributes in the same
/// (canonical) order.
pub struct StreamMatcher<'p> {
    plan: &'p StreamPattern,
    /// Frame storage; `stack[..depth]` live, the rest pooled.
    stack: Vec<MFrame>,
    depth: usize,
    scratch: Vec<u64>,
    verdict: bool,
    peak_depth: usize,
}

impl<'p> StreamMatcher<'p> {
    /// A fresh cursor over `plan`.
    pub fn new(plan: &'p StreamPattern) -> StreamMatcher<'p> {
        StreamMatcher {
            plan,
            stack: Vec::new(),
            depth: 0,
            scratch: vec![0; plan.words],
            verdict: false,
            peak_depth: 0,
        }
    }

    /// Deepest nesting seen so far.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// High-water mark of live matcher state in bytes (three obligation
    /// bitsets per open element).
    pub fn peak_state_bytes(&self) -> u64 {
        (self.peak_depth as u64 * 3 + 1) * self.plan.words as u64 * 8
    }

    /// Processes a start tag: evaluates every pattern node's local test
    /// (label, arity, within-tuple equalities) against this element.
    pub fn open(&mut self, label: &Name, attrs: &[(Name, Value)]) {
        let words = self.plan.words;
        if self.depth == self.stack.len() {
            self.stack.push(MFrame {
                local_ok: vec![0; words],
                child_ok: vec![0; words],
                sub_any: vec![0; words],
            });
        }
        let frame = &mut self.stack[self.depth];
        frame.local_ok.iter_mut().for_each(|w| *w = 0);
        frame.child_ok.iter_mut().for_each(|w| *w = 0);
        frame.sub_any.iter_mut().for_each(|w| *w = 0);
        for (pi, p) in self.plan.nodes.iter().enumerate() {
            if !p.label.accepts(label) {
                continue;
            }
            if let Some(arity) = p.arity {
                if attrs.len() != arity {
                    continue;
                }
            }
            if p.eq_pairs
                .iter()
                .any(|&(i, j)| attrs[i as usize].1 != attrs[j as usize].1)
            {
                continue;
            }
            set_bit(&mut frame.local_ok, pi);
        }
        self.depth += 1;
        self.peak_depth = self.peak_depth.max(self.depth);
    }

    /// Processes an end tag: resolves this element's obligations and folds
    /// the result into its parent (or the verdict, at the document root).
    pub fn close(&mut self) {
        assert!(self.depth > 0, "close without matching open");
        let words = self.plan.words;
        // matched = local_ok ∧ child obligations ∧ descendant obligations.
        let frame = &self.stack[self.depth - 1];
        self.scratch.iter_mut().for_each(|w| *w = 0);
        for (pi, p) in self.plan.nodes.iter().enumerate() {
            if !get_bit(&frame.local_ok, pi) {
                continue;
            }
            let children_ok = p
                .child_members
                .iter()
                .all(|&m| get_bit(&frame.child_ok, m as usize));
            let descendants_ok = p
                .desc_members
                .iter()
                .all(|&d| get_bit(&frame.sub_any, d as usize));
            if children_ok && descendants_ok {
                set_bit(&mut self.scratch, pi);
            }
        }
        self.depth -= 1;
        if self.depth == 0 {
            self.verdict = get_bit(&self.scratch, self.plan.pat.root());
            return;
        }
        let (parents, closed) = self.stack.split_at_mut(self.depth);
        let parent = &mut parents[self.depth - 1];
        let frame = &closed[0];
        for w in 0..words {
            parent.child_ok[w] |= self.scratch[w];
            parent.sub_any[w] |= self.scratch[w] | frame.sub_any[w];
        }
    }

    /// The membership verdict; valid once the document root has closed.
    pub fn finish(&self) -> bool {
        assert_eq!(self.depth, 0, "finish with unclosed elements");
        self.verdict
    }
}

/// Placeholder for tuple positions a subtree does not bind. Never visible
/// in a complete match: the pattern root's subtree covers every variable,
/// so every position of an emitted root tuple has been overwritten.
const FILLER: Value = Value::Null(u64::MAX);

/// Per-depth enumerator state for one open element: the boolean
/// obligation bitsets (exactly [`StreamMatcher`]'s) plus the match
/// tuples witnessed in the element's already-closed children.
struct EFrame {
    local_ok: Vec<u64>,
    child_ok: Vec<u64>,
    sub_any: Vec<u64>,
    /// Per pattern node: this element's local binding (tuple position
    /// `vars[k]` ← attribute `k`), when the local test passed and the
    /// node binds variables.
    local: Vec<Option<Box<[Value]>>>,
    /// Per pattern node `p`: complete matches of `p`'s subtree rooted at
    /// an already-closed child of this element.
    child: Vec<Vec<Box<[Value]>>>,
    /// … rooted strictly below a child.
    deeper: Vec<Vec<Box<[Value]>>>,
}

/// Complete matches of pattern node `pi`'s subtree rooted at the closing
/// element: the Cartesian join of the element's local binding with one
/// witness per variable-binding child/descendant obligation
/// (variable-free obligations are certified by the boolean gate, so they
/// contribute no factor — and no spurious multiplicity). Deduplicated,
/// because distinct children can witness identical valuations.
fn rooted_tuples(plan: &StreamPattern, frame: &EFrame, pi: usize) -> Vec<Box<[Value]>> {
    let width = plan.pat.var_count();
    let p = &plan.nodes[pi];
    let mut acc: Vec<Box<[Value]>> = vec![match &frame.local[pi] {
        Some(t) => t.clone(),
        None => vec![FILLER; width].into_boxed_slice(),
    }];
    let factors = p
        .child_members
        .iter()
        .map(|&m| (m as usize, false))
        .chain(p.desc_members.iter().map(|&d| (d as usize, true)));
    for (m, with_deeper) in factors {
        if plan.sub_vars[m].is_empty() {
            continue; // certified by the boolean gate
        }
        // A proper descendant is a child or strictly below one.
        let deeper: &[Box<[Value]>] = if with_deeper { &frame.deeper[m] } else { &[] };
        let mut out = Vec::with_capacity(acc.len() * (frame.child[m].len() + deeper.len()));
        for t in &acc {
            for u in frame.child[m].iter().chain(deeper) {
                let mut merged = t.clone();
                for &k in &plan.sub_vars[m] {
                    merged[k as usize] = u[k as usize].clone();
                }
                out.push(merged);
            }
        }
        acc = out;
    }
    acc.sort_unstable();
    acc.dedup();
    acc
}

/// A push-based streaming *valuation* enumerator over one document: like
/// [`StreamMatcher`], but each close emits the complete match tuples
/// rooted in the closing subtree instead of a bit.
///
/// Feed [`open`](StreamEnumerator::open)/[`close`](StreamEnumerator::close)
/// in document order, then collect the root matches from
/// [`finish`](StreamEnumerator::finish). Tuples are indexed by interned
/// variable id ([`CompiledPattern::var_id`]) and come out sorted in
/// alphabetical variable order and deduplicated — exactly the rows of
/// [`crate::Matcher::all_match_tuples`] on the same (normalised)
/// document. Attribute values pair with pattern tuples positionally, so
/// feed attributes in canonical order (as the schema-aware driver in
/// `xmlmap-core` does).
pub struct StreamEnumerator<'p> {
    plan: &'p StreamPattern,
    /// Frame storage; `stack[..depth]` live, the rest pooled.
    stack: Vec<EFrame>,
    depth: usize,
    scratch: Vec<u64>,
    /// Root matches, harvested when the document root closes.
    matches: Vec<Box<[Value]>>,
    done: bool,
    peak_depth: usize,
    /// Currently-live match tuples (local bindings + witnessed subtree
    /// matches), and its high-water mark.
    live: u64,
    peak_live: u64,
}

impl<'p> StreamEnumerator<'p> {
    /// A fresh enumerator over `plan`.
    pub fn new(plan: &'p StreamPattern) -> StreamEnumerator<'p> {
        StreamEnumerator {
            plan,
            stack: Vec::new(),
            depth: 0,
            scratch: vec![0; plan.words],
            matches: Vec::new(),
            done: false,
            peak_depth: 0,
            live: 0,
            peak_live: 0,
        }
    }

    /// Deepest nesting seen so far.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// High-water mark of live valuations (local bindings plus witnessed
    /// subtree matches held for open ancestors).
    pub fn peak_live_valuations(&self) -> u64 {
        self.peak_live
    }

    /// High-water mark of live enumerator state in bytes: the per-depth
    /// obligation bitsets plus the live valuation tuples.
    pub fn peak_state_bytes(&self) -> u64 {
        let tuple = 16 + self.plan.pat.var_count() as u64 * std::mem::size_of::<Value>() as u64;
        (self.peak_depth as u64 * 3 + 1) * self.plan.words as u64 * 8 + self.peak_live * tuple
    }

    /// Processes a start tag: evaluates every pattern node's local test
    /// and records the local variable binding where it passes.
    pub fn open(&mut self, label: &Name, attrs: &[(Name, Value)]) {
        let words = self.plan.words;
        let n = self.plan.nodes.len();
        if self.depth == self.stack.len() {
            self.stack.push(EFrame {
                local_ok: vec![0; words],
                child_ok: vec![0; words],
                sub_any: vec![0; words],
                local: vec![None; n],
                child: vec![Vec::new(); n],
                deeper: vec![Vec::new(); n],
            });
        }
        let width = self.plan.pat.var_count();
        let frame = &mut self.stack[self.depth];
        frame.local_ok.iter_mut().for_each(|w| *w = 0);
        frame.child_ok.iter_mut().for_each(|w| *w = 0);
        frame.sub_any.iter_mut().for_each(|w| *w = 0);
        // Pooled frames come back empty: `close` drains every tuple set.
        debug_assert!(frame.local.iter().all(Option::is_none));
        debug_assert!(frame.child.iter().chain(&frame.deeper).all(Vec::is_empty));
        for (pi, p) in self.plan.nodes.iter().enumerate() {
            if !p.label.accepts(label) {
                continue;
            }
            if let Some(arity) = p.arity {
                if attrs.len() != arity {
                    continue;
                }
            }
            if p.eq_pairs
                .iter()
                .any(|&(i, j)| attrs[i as usize].1 != attrs[j as usize].1)
            {
                continue;
            }
            set_bit(&mut frame.local_ok, pi);
            let vars = &self.plan.pat.nodes[pi].vars;
            if !vars.is_empty() {
                let mut t = vec![FILLER; width].into_boxed_slice();
                for (k, &id) in vars.iter().enumerate() {
                    t[id as usize] = attrs[k].1.clone();
                }
                frame.local[pi] = Some(t);
                self.live += 1;
            }
        }
        self.depth += 1;
        self.peak_depth = self.peak_depth.max(self.depth);
        self.peak_live = self.peak_live.max(self.live);
    }

    /// Processes an end tag: resolves the boolean gate exactly as
    /// [`StreamMatcher::close`], emits the rooted match tuples for every
    /// gated pattern node, and folds both into the parent frame.
    pub fn close(&mut self) {
        assert!(self.depth > 0, "close without matching open");
        let plan = self.plan;
        let n = plan.nodes.len();
        let words = plan.words;
        {
            let frame = &self.stack[self.depth - 1];
            self.scratch.iter_mut().for_each(|w| *w = 0);
            for (pi, p) in plan.nodes.iter().enumerate() {
                if !get_bit(&frame.local_ok, pi) {
                    continue;
                }
                let children_ok = p
                    .child_members
                    .iter()
                    .all(|&m| get_bit(&frame.child_ok, m as usize));
                let descendants_ok = p
                    .desc_members
                    .iter()
                    .all(|&d| get_bit(&frame.sub_any, d as usize));
                if children_ok && descendants_ok {
                    set_bit(&mut self.scratch, pi);
                }
            }
        }
        self.depth -= 1;
        if self.depth == 0 {
            // The document root: only matches rooted *here* are pattern
            // matches (the arena kernel anchors at the tree root too).
            let matched = get_bit(&self.scratch, plan.pat.root());
            let frame = &mut self.stack[0];
            let rooted = if matched {
                rooted_tuples(plan, frame, plan.pat.root())
            } else {
                Vec::new()
            };
            self.live += rooted.len() as u64;
            self.peak_live = self.peak_live.max(self.live);
            for pi in 0..n {
                if frame.local[pi].take().is_some() {
                    self.live -= 1;
                }
                self.live -= (frame.child[pi].len() + frame.deeper[pi].len()) as u64;
                frame.child[pi].clear();
                frame.deeper[pi].clear();
            }
            self.matches = rooted;
            self.done = true;
            return;
        }
        let (parents, closed) = self.stack.split_at_mut(self.depth);
        let parent = &mut parents[self.depth - 1];
        let frame = &mut closed[0];
        // Emit every gated node's rooted tuples before draining anything:
        // a node's witnesses live in the sets of its members, which have
        // smaller post-order indices.
        for pi in 0..n {
            if get_bit(&self.scratch, pi) {
                let rooted = rooted_tuples(plan, frame, pi);
                self.live += rooted.len() as u64;
                parent.child[pi].extend(rooted);
            }
        }
        for pi in 0..n {
            // Local bindings die with the element; witnessed subtree
            // matches move (children of this element are strictly below
            // a child of the parent).
            if frame.local[pi].take().is_some() {
                self.live -= 1;
            }
            parent.deeper[pi].append(&mut frame.child[pi]);
            parent.deeper[pi].append(&mut frame.deeper[pi]);
        }
        for w in 0..words {
            parent.child_ok[w] |= self.scratch[w];
            parent.sub_any[w] |= self.scratch[w] | frame.sub_any[w];
        }
        self.peak_live = self.peak_live.max(self.live);
    }

    /// The complete root matches; valid once the document root has
    /// closed. Non-empty iff the document matches — a variable-free
    /// pattern that matches yields exactly one empty tuple, like
    /// [`crate::Matcher::all_match_tuples`].
    pub fn finish(mut self) -> Vec<Box<[Value]>> {
        assert!(self.done, "finish before the document root closed");
        // Canonical row order: value order in alphabetical variable
        // order, replayed from the arena kernel so the two enumerations
        // are comparable (and consumable) verbatim.
        let vars = self.plan.pat.vars();
        let mut perm: Vec<usize> = (0..vars.len()).collect();
        perm.sort_by(|&a, &b| vars[a].cmp(&vars[b]));
        self.matches.sort_unstable_by(|a, b| {
            perm.iter()
                .map(|&i| a[i].cmp(&b[i]))
                .find(|c| *c != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        });
        self.matches.dedup();
        self.matches
    }
}

/// One-shot convenience: does the document on `src` match `plan` at its
/// root? Attributes are paired positionally in document order (use the
/// schema-aware driver in `xmlmap-core` for canonical-order pairing).
pub fn matches_stream<R: Read>(plan: &StreamPattern, src: R) -> Result<bool, XmlError> {
    let mut reader = SaxReader::new(src);
    let mut m = StreamMatcher::new(plan);
    while let Some(event) = reader.next_event()? {
        match event {
            SaxEvent::Open { label, attrs } => m.open(&label, &attrs),
            SaxEvent::Close { .. } => m.close(),
        }
    }
    Ok(m.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::matches;
    use crate::parse::parse;

    fn check_both(doc: &str, pattern: &str) -> bool {
        let p = parse(pattern).unwrap();
        let plan = StreamPattern::compile(&p).unwrap();
        let streamed = matches_stream(&plan, doc.as_bytes()).unwrap();
        let tree = xmlmap_trees::xml::parse(doc).unwrap();
        let arena = matches(&tree, &p);
        assert_eq!(streamed, arena, "verdicts diverge: {pattern} over {doc}");
        streamed
    }

    const DOC: &str = r#"<r>
      <prof name="Ada">
        <teach><year y="2008"><course cno="cs1"/><course cno="cs2"/></year></teach>
        <supervise><student sid="Sue"/></supervise>
      </prof>
    </r>"#;

    #[test]
    fn downward_patterns_agree_with_the_arena() {
        assert!(check_both(DOC, "r/prof(x)"));
        assert!(check_both(DOC, "r//course(c)"));
        assert!(check_both(
            DOC,
            "r[prof(x)[teach//course(c), supervise/student(s)]]"
        ));
        assert!(check_both(DOC, "r/_//_(y)"));
        assert!(!check_both(DOC, "r/student(s)"));
        assert!(!check_both(DOC, "r//prof(x)[supervise/course(c)]"));
        // Arity mismatches: prof has one attribute, pattern wants two.
        assert!(!check_both(DOC, "r/prof(x, y)"));
        // Empty tuple matches any arity.
        assert!(check_both(DOC, "r/prof"));
    }

    #[test]
    fn within_node_repeats_are_local_equalities() {
        let doc = r#"<r><a x="1" y="1"/><a x="2" y="3"/></r>"#;
        assert!(check_both(doc, "r/a(v, v)"));
        let doc2 = r#"<r><a x="2" y="3"/></r>"#;
        assert!(!check_both(doc2, "r/a(v, v)"));
    }

    #[test]
    fn fragment_boundary_is_diagnosed() {
        let sib = parse("r[a(x) -> b(y)]").unwrap();
        let sib_err = StreamPattern::compile(&sib).err().unwrap();
        assert_eq!(sib_err, UnstreamablePattern::SiblingOrder);
        let join = parse("r[a(x), b(x)]").unwrap();
        let join_err = StreamPattern::compile(&join).err().unwrap();
        assert_eq!(join_err, UnstreamablePattern::SharedVariable(Var::new("x")));
        // The diagnostics name the feature.
        assert!(sib_err.to_string().contains("sibling-order"));
        assert!(join_err.to_string().contains("shared across pattern nodes"));
    }

    fn both_tuple_sets(doc: &str, pattern: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
        let p = parse(pattern).unwrap();
        let plan = StreamPattern::compile(&p).unwrap();
        let mut en = StreamEnumerator::new(&plan);
        let mut reader = SaxReader::new(doc.as_bytes());
        while let Some(ev) = reader.next_event().unwrap() {
            match ev {
                SaxEvent::Open { label, attrs } => en.open(&label, &attrs),
                SaxEvent::Close { .. } => en.close(),
            }
        }
        let streamed: Vec<Vec<Value>> = en.finish().into_iter().map(|t| t.into_vec()).collect();
        let tree = xmlmap_trees::xml::parse(doc).unwrap();
        let arena: Vec<Vec<Value>> = crate::compiled::Matcher::new(&tree, plan.compiled())
            .all_match_tuples()
            .into_iter()
            .map(|t| t.into_iter().cloned().collect())
            .collect();
        (streamed, arena)
    }

    #[test]
    fn enumerated_valuations_equal_the_arena_kernel() {
        for pattern in [
            "r/prof(x)",
            "r//course(c)",
            "r[prof(x)[teach//course(c), supervise/student(s)]]",
            "r/_//_(y)",
            "r//prof(x)[supervise/course(c)]",
            "r/prof(x, y)",
            "r/prof",
            "r//year(y)[course(c1), course(c2)]",
            "r//_",
        ] {
            let (streamed, arena) = both_tuple_sets(DOC, pattern);
            assert_eq!(streamed, arena, "tuple sets diverge for {pattern}");
        }
    }

    #[test]
    fn enumeration_handles_repeats_and_multiplicity() {
        // Two identical witnesses must collapse to one row; a variable-free
        // matching pattern yields exactly one empty tuple.
        let doc = r#"<r><a x="1" y="1"/><a x="1" y="1"/><a x="2" y="3"/></r>"#;
        let (streamed, arena) = both_tuple_sets(doc, "r/a(v, v)");
        assert_eq!(streamed, arena);
        assert_eq!(streamed, vec![vec![Value::str("1")]]);
        let (streamed, arena) = both_tuple_sets(doc, "r/a");
        assert_eq!(streamed, arena);
        assert_eq!(streamed, vec![Vec::new()]);
        let (streamed, arena) = both_tuple_sets(doc, "r/b");
        assert_eq!(streamed, arena);
        assert!(streamed.is_empty());
    }

    #[test]
    fn enumeration_joins_descendant_and_child_obligations() {
        let (streamed, arena) =
            both_tuple_sets(DOC, "r[prof(x)[teach[year(y)[course(c1), course(c2)]]]]");
        assert_eq!(streamed, arena);
        // 2 course choices per slot (the kernel allows both orders and the
        // diagonal): the join must reproduce them all.
        assert_eq!(streamed.len(), 4);
        let deep = format!(
            "<r>{}<c v=\"hit\"/>{}<c v=\"top\"/></r>",
            "<a>".repeat(120),
            "</a>".repeat(120)
        );
        let (streamed, arena) = both_tuple_sets(&deep, "r//c(x)");
        assert_eq!(streamed, arena);
        assert_eq!(streamed.len(), 2);
    }

    #[test]
    fn enumerator_counters_track_depth_and_live_state() {
        let deep = format!(
            "<r>{}<c v=\"hit\"/>{}</r>",
            "<a>".repeat(50),
            "</a>".repeat(50)
        );
        let p = parse("r//c(x)").unwrap();
        let plan = StreamPattern::compile(&p).unwrap();
        let mut en = StreamEnumerator::new(&plan);
        let mut reader = SaxReader::new(deep.as_bytes());
        while let Some(ev) = reader.next_event().unwrap() {
            match ev {
                SaxEvent::Open { label, attrs } => en.open(&label, &attrs),
                SaxEvent::Close { .. } => en.close(),
            }
        }
        assert_eq!(en.peak_depth(), 52);
        assert!(en.peak_live_valuations() >= 1);
        assert!(en.peak_state_bytes() > 0);
        assert_eq!(en.finish().len(), 1);
    }

    #[test]
    fn deep_and_wide_documents_stream() {
        let deep = format!(
            "<r>{}<c v=\"hit\"/>{}</r>",
            "<a>".repeat(200),
            "</a>".repeat(200)
        );
        assert!(check_both(&deep, "r//c(x)"));
        let wide = format!("<r>{}<c v=\"hit\"/></r>", "<b/>".repeat(500));
        assert!(check_both(&wide, "r/c(x)"));
        let p = parse("r//c(x)").unwrap();
        let plan = StreamPattern::compile(&p).unwrap();
        let mut m = StreamMatcher::new(&plan);
        let mut reader = SaxReader::new(deep.as_bytes());
        while let Some(ev) = reader.next_event().unwrap() {
            match ev {
                SaxEvent::Open { label, attrs } => m.open(&label, &attrs),
                SaxEvent::Close { .. } => m.close(),
            }
        }
        assert!(m.finish());
        assert_eq!(m.peak_depth(), 202);
    }
}
