//! Pattern minimisation relative to a DTD.
//!
//! Tree-pattern minimisation is one of the lines of work the paper builds
//! on (Amer-Yahia, Cho, Lakshmanan, Srivastava — reference \[2\]). Given a
//! DTD, a pattern often contains *redundant* structure: items implied by
//! the DTD (`a/b` when `a`'s production makes `b` mandatory) or by other
//! items. Removing them speeds up every downstream use — evaluation,
//! satisfiability, consistency checks all scale with pattern size.
//!
//! [`minimize`] greedily deletes **variable-free** list items whose removal
//! keeps the pattern equivalent over the DTD ([`crate::sat::equivalent`]);
//! items carrying variables are kept, since deleting them would change the
//! valuation schema even when the Boolean semantics is unchanged.

use crate::ast::{ListItem, Pattern};
use crate::sat::{equivalent, BudgetExceeded};
use xmlmap_dtd::Dtd;

/// Does this pattern subtree bind any variable?
fn has_vars(p: &Pattern) -> bool {
    !p.variables().is_empty()
}

fn item_has_vars(item: &ListItem) -> bool {
    match item {
        ListItem::Seq { members, .. } => members.iter().any(has_vars),
        ListItem::Descendant(d) => has_vars(d),
    }
}

/// Minimises `pattern` over `dtd`: repeatedly removes variable-free list
/// items (anywhere in the pattern) whose removal preserves equivalence.
/// The result matches exactly the same documents with exactly the same
/// valuations.
pub fn minimize(dtd: &Dtd, pattern: &Pattern, budget: usize) -> Result<Pattern, BudgetExceeded> {
    let mut current = pattern.clone();
    loop {
        let mut changed = false;
        // Enumerate candidate deletions: paths to variable-free items.
        let candidates = candidate_paths(&current);
        for path in candidates {
            let trimmed = remove_item(&current, &path);
            if equivalent(dtd, &current, &trimmed, budget)? {
                current = trimmed;
                changed = true;
                break; // restart: paths shifted
            }
        }
        if !changed {
            return Ok(current);
        }
    }
}

/// A path to a list item: indices into nested pattern lists. Each step is
/// (item index, member index within a sequence) to descend; the final step
/// selects the item to delete.
type ItemPath = Vec<(usize, usize)>;

fn candidate_paths(p: &Pattern) -> Vec<ItemPath> {
    let mut out = Vec::new();
    fn walk(p: &Pattern, prefix: &ItemPath, out: &mut Vec<ItemPath>) {
        for (i, item) in p.list.iter().enumerate() {
            let mut here = prefix.clone();
            here.push((i, usize::MAX)); // MAX marks "delete this item"
            if !item_has_vars(item) {
                out.push(here.clone());
            }
            match item {
                ListItem::Seq { members, .. } => {
                    for (mi, m) in members.iter().enumerate() {
                        let mut down = prefix.clone();
                        down.push((i, mi));
                        walk(m, &down, out);
                    }
                }
                ListItem::Descendant(d) => {
                    let mut down = prefix.clone();
                    down.push((i, 0));
                    walk(d, &down, out);
                }
            }
        }
    }
    walk(p, &Vec::new(), &mut out);
    out
}

fn remove_item(p: &Pattern, path: &[(usize, usize)]) -> Pattern {
    let mut out = p.clone();
    fn go(p: &mut Pattern, path: &[(usize, usize)]) {
        let (i, mi) = path[0];
        if path.len() == 1 {
            debug_assert_eq!(mi, usize::MAX);
            p.list.remove(i);
            return;
        }
        match &mut p.list[i] {
            ListItem::Seq { members, .. } => go(&mut members[mi], &path[1..]),
            ListItem::Descendant(d) => go(d, &path[1..]),
        }
    }
    go(&mut out, path);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::sat::DEFAULT_BUDGET;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    #[test]
    fn drops_dtd_implied_items() {
        // a always has a b child, so [b] under a is redundant; a itself is
        // mandatory under r, so r[a] collapses to r.
        let d = dtd("root r\nr -> a\na -> b");
        let p = parse("r[a[b]]").unwrap();
        let m = minimize(&d, &p, DEFAULT_BUDGET).unwrap();
        assert_eq!(m.to_string(), "r");
    }

    #[test]
    fn keeps_discriminating_items() {
        let d = dtd("root r\nr -> a?, b?");
        let p = parse("r[a, b]").unwrap();
        let m = minimize(&d, &p, DEFAULT_BUDGET).unwrap();
        assert_eq!(m, p); // both items restrict the language
    }

    #[test]
    fn drops_items_subsumed_by_others() {
        // Under this DTD b occurs only below a, so a[b] and //b are
        // interchangeable; the greedy pass keeps whichever single item it
        // reaches first — here the (smaller) descendant form.
        let d = dtd("root r\nr -> a*\na -> b?");
        let p = parse("r[a[b], //b]").unwrap();
        let m = minimize(&d, &p, DEFAULT_BUDGET).unwrap();
        assert_eq!(m.to_string(), "r[//b]");
        assert!(crate::sat::equivalent(&d, &p, &m, DEFAULT_BUDGET).unwrap());
    }

    #[test]
    fn preserves_variable_items() {
        // b(x) binds a variable: never removed, even though b is mandatory.
        let d = dtd("root r\nr -> a\na -> b\nb @ v");
        let p = parse("r[a[b(x)]]").unwrap();
        let m = minimize(&d, &p, DEFAULT_BUDGET).unwrap();
        assert_eq!(m, p);
    }

    #[test]
    fn minimized_pattern_is_equivalent() {
        let d = dtd("root r\nr -> a*, c?\na -> b?\nb @ v");
        for text in ["r[a, a[b(x)], //a]", "r[//a, a, c]", "r[a[b(x)], //b(x)]"] {
            let p = parse(text).unwrap();
            let m = minimize(&d, &p, DEFAULT_BUDGET).unwrap();
            assert!(
                crate::sat::equivalent(&d, &p, &m, DEFAULT_BUDGET).unwrap(),
                "{text} vs {m}"
            );
            assert!(m.size() <= p.size());
        }
    }
}
