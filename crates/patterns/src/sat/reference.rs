//! The original (pre-compiled) type-fixpoint engine, kept as a
//! differential-testing oracle — the same role `crate::reference` plays for
//! the evaluation kernel.
//!
//! Semantics are identical to the compiled engine in
//! [`crate::sat_compiled`]: least fixpoint of achievable `(label, type)`
//! pairs, per-label word exploration as a BFS over machine states. The
//! difference is purely operational — this engine re-sweeps the whole
//! alphabet until nothing grows, scans pairs linearly, and keeps machine
//! states as `BTreeSet`s; the compiled engine interns everything and runs a
//! dependency-driven worklist. Differential proptests
//! (`tests/sat_equiv.rs`) pin the two together.

use super::BudgetExceeded;
use crate::ast::{ListItem, Pattern, SeqOp};
use std::collections::{BTreeSet, HashMap, VecDeque};
use xmlmap_dtd::Dtd;
use xmlmap_regex::Nfa;
use xmlmap_trees::{Name, Tree, Value};

/// A compact bitset used for component types.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
struct Bits(Vec<u64>);

impl Bits {
    fn new(len: usize) -> Bits {
        Bits(vec![0; len.div_ceil(64)])
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
    fn or_assign(&mut self, other: &Bits) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
}

/// Flattened pattern node.
struct NodeC {
    label: crate::ast::LabelTest,
    arity: usize,
    items: Vec<ItemC>,
}

/// Flattened list item.
enum ItemC {
    /// `//π` where π has the given pattern-node id.
    Desc(usize),
    /// A sequence item, indexing into the global sequence table.
    Seq(usize),
}

/// A sequence acceptor: members (pattern-node ids) and operators.
struct SeqC {
    members: Vec<usize>,
    ops: Vec<SeqOp>,
}

/// An achievable `(label, type)` pair plus the witness word that produced it.
struct PairInfo {
    label: Name,
    typ: Bits,
    /// Children realisation: ids of achievable pairs, in order.
    word: Vec<usize>,
}

/// The reference satisfiability engine for a DTD and a set of patterns.
pub struct TypeEngine<'a> {
    dtd: &'a Dtd,
    nodes: Vec<NodeC>,
    seqs: Vec<SeqC>,
    /// Root pattern-node id of each input pattern.
    roots: Vec<usize>,
    /// pid → SubtreeMatch component index (only for `//`-referenced nodes).
    subtree_bit: HashMap<usize, usize>,
    n_comps: usize,
    /// Achievable pairs, in discovery order (witness words only reference
    /// earlier sweeps, so recursion over them is well-founded).
    pairs: Vec<PairInfo>,
    pair_index: HashMap<(Name, Bits), usize>,
    states_explored: usize,
    budget: usize,
}

/// One machine state of the per-label word exploration.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MachineState {
    /// Subset state of the production NFA.
    dtd: BTreeSet<usize>,
    /// Subset state of every sequence acceptor.
    seqs: Vec<BTreeSet<usize>>,
    /// `SubtreeMatch` components seen on some symbol so far.
    seen: Bits,
}

impl<'a> TypeEngine<'a> {
    /// Builds the engine for `dtd` and `patterns`. `budget` bounds the total
    /// number of machine states explored (across all sweeps).
    pub fn new(dtd: &'a Dtd, patterns: &[&Pattern], budget: usize) -> TypeEngine<'a> {
        let mut nodes: Vec<NodeC> = Vec::new();
        let mut seqs: Vec<SeqC> = Vec::new();
        let mut desc_pids: Vec<usize> = Vec::new();

        fn flatten(
            p: &Pattern,
            nodes: &mut Vec<NodeC>,
            seqs: &mut Vec<SeqC>,
            desc_pids: &mut Vec<usize>,
        ) -> usize {
            let pid = nodes.len();
            nodes.push(NodeC {
                label: p.label.clone(),
                arity: p.vars.len(),
                items: Vec::new(),
            });
            let mut items = Vec::new();
            for item in &p.list {
                match item {
                    ListItem::Descendant(sub) => {
                        let sub_pid = flatten(sub, nodes, seqs, desc_pids);
                        desc_pids.push(sub_pid);
                        items.push(ItemC::Desc(sub_pid));
                    }
                    ListItem::Seq { members, ops } => {
                        let member_pids = members
                            .iter()
                            .map(|m| flatten(m, nodes, seqs, desc_pids))
                            .collect();
                        seqs.push(SeqC {
                            members: member_pids,
                            ops: ops.clone(),
                        });
                        items.push(ItemC::Seq(seqs.len() - 1));
                    }
                }
            }
            nodes[pid].items = items;
            pid
        }

        let roots = patterns
            .iter()
            .map(|p| flatten(p, &mut nodes, &mut seqs, &mut desc_pids))
            .collect();

        // Components: NodeMatch(pid) = bit pid; SubtreeMatch for every
        // `//`-referenced pid, and (transitively) everything below them —
        // SubtreeMatch(q) needs NodeMatch(q) at descendants, which the
        // engine gets from types, so only the referenced pid needs a bit.
        let n_nodes = nodes.len();
        let mut subtree_bit = HashMap::new();
        for pid in desc_pids {
            let next = n_nodes + subtree_bit.len();
            subtree_bit.entry(pid).or_insert(next);
        }
        let n_comps = n_nodes + subtree_bit.len();

        TypeEngine {
            dtd,
            nodes,
            seqs,
            roots,
            subtree_bit,
            n_comps,
            pairs: Vec::new(),
            pair_index: HashMap::new(),
            states_explored: 0,
            budget,
        }
    }

    /// Runs the fixpoint to completion.
    pub fn run(&mut self) -> Result<(), BudgetExceeded> {
        loop {
            let frozen = self.pairs.len();
            let labels: Vec<Name> = self.dtd.alphabet().cloned().collect();
            let mut discovered: Vec<PairInfo> = Vec::new();
            for label in &labels {
                self.explore_label(label, frozen, &mut discovered)?;
            }
            let mut grew = false;
            for info in discovered {
                let key = (info.label.clone(), info.typ.clone());
                if !self.pair_index.contains_key(&key) {
                    self.pair_index.insert(key, self.pairs.len());
                    self.pairs.push(info);
                    grew = true;
                }
            }
            if !grew {
                return Ok(());
            }
        }
    }

    /// Explores all children words for `label` over the first `frozen`
    /// achievable pairs, collecting every realizable `(label, τ)`.
    fn explore_label(
        &mut self,
        label: &Name,
        frozen: usize,
        discovered: &mut Vec<PairInfo>,
    ) -> Result<(), BudgetExceeded> {
        let epsilon_nfa = Nfa::epsilon();
        let nfa: &Nfa<Name> = self.dtd.horizontal(label).unwrap_or(&epsilon_nfa);

        let initial = MachineState {
            dtd: BTreeSet::from([0usize]),
            seqs: vec![BTreeSet::from([0usize]); self.seqs.len()],
            seen: Bits::new(self.n_comps),
        };
        let mut index: HashMap<MachineState, usize> = HashMap::new();
        let mut states: Vec<MachineState> = Vec::new();
        let mut parent: Vec<Option<(usize, usize)>> = Vec::new(); // (state, pair id)
        let mut queue = VecDeque::new();
        index.insert(initial.clone(), 0);
        states.push(initial);
        parent.push(None);
        queue.push_back(0usize);
        let mut emitted: BTreeSet<Bits> = BTreeSet::new();

        while let Some(si) = queue.pop_front() {
            self.states_explored += 1;
            if self.states_explored > self.budget {
                return Err(BudgetExceeded {
                    budget: self.budget,
                    states_explored: self.states_explored,
                    context: "reference engine".to_string(),
                });
            }
            let state = states[si].clone();

            // Complete word? Emit the induced type.
            if state.dtd.iter().any(|&q| nfa.accepting[q]) {
                let typ = self.induced_type(label, &state);
                if emitted.insert(typ.clone())
                    && !self.pair_index.contains_key(&(label.clone(), typ.clone()))
                {
                    // Reconstruct the witness word.
                    let mut word = Vec::new();
                    let mut cur = si;
                    while let Some((prev, pid)) = parent[cur] {
                        word.push(pid);
                        cur = prev;
                    }
                    word.reverse();
                    // A later-discovered duplicate within `discovered` is
                    // filtered by the caller's index check.
                    discovered.push(PairInfo {
                        label: label.clone(),
                        typ,
                        word,
                    });
                }
            }

            // Transitions on every achievable pair.
            for pid in 0..frozen {
                let next = self.step(&state, nfa, pid);
                if next.dtd.is_empty() {
                    continue; // the production can never complete from here
                }
                if !index.contains_key(&next) {
                    let ni = states.len();
                    index.insert(next.clone(), ni);
                    states.push(next);
                    parent.push(Some((si, pid)));
                    queue.push_back(ni);
                }
            }
        }
        Ok(())
    }

    /// One machine transition on the achievable pair `pid`.
    fn step(&self, state: &MachineState, nfa: &Nfa<Name>, pid: usize) -> MachineState {
        let pair = &self.pairs[pid];
        // DTD production part.
        let mut dtd = BTreeSet::new();
        for &q in &state.dtd {
            for (sym, q2) in &nfa.transitions[q] {
                if sym == &pair.label {
                    dtd.insert(*q2);
                }
            }
        }
        // Sequence acceptors.
        let mut seqs = Vec::with_capacity(self.seqs.len());
        for (k, seq) in self.seqs.iter().enumerate() {
            let n = seq.members.len();
            let mut next = BTreeSet::new();
            for &s in &state.seqs[k] {
                if s == n {
                    next.insert(n); // trailing Σ*
                    continue;
                }
                // Gap self-loop: leading Σ* at 0, or →* gaps.
                if s == 0 || seq.ops[s - 1] == SeqOp::Following {
                    next.insert(s);
                }
                // Advance when the symbol's type matches the member.
                if pair.typ.get(seq.members[s]) {
                    next.insert(s + 1);
                }
            }
            seqs.push(next);
        }
        // Seen SubtreeMatch components.
        let mut seen = state.seen.clone();
        seen.or_assign(&pair.typ);
        // Only the SubtreeMatch range matters for `seen`; NodeMatch bits of
        // children are harmless to keep (they are never read from `seen`).
        MachineState { dtd, seqs, seen }
    }

    /// The type induced at an ℓ-labelled node whose children produced
    /// machine state `state`.
    fn induced_type(&self, label: &Name, state: &MachineState) -> Bits {
        let mut typ = Bits::new(self.n_comps);
        let arity = self.dtd.arity(label);
        for (pid, node) in self.nodes.iter().enumerate() {
            // An empty variable tuple imposes no arity requirement
            // (mirrors `eval`; see the comment there).
            if !node.label.accepts(label) || (node.arity != 0 && node.arity != arity) {
                continue;
            }
            let all_items = node.items.iter().all(|item| match item {
                ItemC::Desc(sub) => state.seen.get(self.subtree_bit[sub]),
                ItemC::Seq(k) => {
                    let n = self.seqs[*k].members.len();
                    state.seqs[*k].contains(&n)
                }
            });
            if all_items {
                typ.set(pid);
            }
        }
        // SubtreeMatch: here or in some child's subtree.
        for (&pid, &bit) in &self.subtree_bit {
            if typ.get(pid) || state.seen.get(bit) {
                typ.set(bit);
            }
        }
        typ
    }

    /// All achievable root match sets `J` (indices into the input pattern
    /// list), each with a witness document conforming to the DTD. Every
    /// attribute of the witness carries the same constant, so implicit
    /// equalities in patterns are always satisfied.
    pub fn root_match_sets(&mut self) -> Result<Vec<(BTreeSet<usize>, Tree)>, BudgetExceeded> {
        self.run()?;
        let mut out: Vec<(BTreeSet<usize>, Tree)> = Vec::new();
        let mut seen: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for (id, info) in self.pairs.iter().enumerate() {
            if &info.label != self.dtd.root() {
                continue;
            }
            let set: BTreeSet<usize> = self
                .roots
                .iter()
                .enumerate()
                .filter(|(_, &pid)| info.typ.get(pid))
                .map(|(i, _)| i)
                .collect();
            if seen.insert(set.clone()) {
                out.push((set, self.build_witness(id)));
            }
        }
        Ok(out)
    }

    /// Is there a `T ⊨ D` matching **all** input patterns at the root?
    /// Returns a witness. (Lemma 4.1 is the single-pattern case.)
    pub fn satisfiable_conj(&mut self) -> Result<Option<Tree>, BudgetExceeded> {
        let n = self.roots.len();
        let sets = self.root_match_sets()?;
        Ok(sets
            .into_iter()
            .find(|(set, _)| set.len() == n)
            .map(|(_, tree)| tree))
    }

    /// Total machine states explored so far (diagnostics for benches).
    pub fn states_explored(&self) -> usize {
        self.states_explored
    }

    fn build_witness(&self, pair_id: usize) -> Tree {
        fn attach(engine: &TypeEngine<'_>, tree: &mut Tree, at: xmlmap_trees::NodeId, pid: usize) {
            for &child in &engine.pairs[pid].word {
                let info = &engine.pairs[child];
                let node = tree.add_child(
                    at,
                    info.label.clone(),
                    engine
                        .dtd
                        .attrs(&info.label)
                        .iter()
                        .map(|a| (a.clone(), Value::str("d"))),
                );
                attach(engine, tree, node, child);
            }
        }
        let info = &self.pairs[pair_id];
        let mut tree = Tree::with_root_attrs(
            info.label.clone(),
            self.dtd
                .attrs(&info.label)
                .iter()
                .map(|a| (a.clone(), Value::str("d"))),
        );
        attach(self, &mut tree, Tree::ROOT, pair_id);
        tree
    }
}

/// Reference oracle for [`crate::sat::satisfiable`].
pub fn satisfiable(
    dtd: &Dtd,
    pattern: &Pattern,
    budget: usize,
) -> Result<Option<Tree>, BudgetExceeded> {
    TypeEngine::new(dtd, &[pattern], budget).satisfiable_conj()
}

/// Reference oracle for [`crate::sat::satisfiable_all`].
pub fn satisfiable_all(
    dtd: &Dtd,
    patterns: &[&Pattern],
    budget: usize,
) -> Result<Option<Tree>, BudgetExceeded> {
    TypeEngine::new(dtd, patterns, budget).satisfiable_conj()
}

/// Reference oracle for [`crate::sat::achievable_match_sets`].
pub fn achievable_match_sets(
    dtd: &Dtd,
    patterns: &[&Pattern],
    budget: usize,
) -> Result<Vec<(BTreeSet<usize>, Tree)>, BudgetExceeded> {
    TypeEngine::new(dtd, patterns, budget).root_match_sets()
}
