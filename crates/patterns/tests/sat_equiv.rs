//! Differential tests: the compiled fixpoint engine (`sat_compiled`) versus
//! the original reference engine (`sat::reference`) over random DTD ×
//! pattern-set instances.
//!
//! The reference engine is the paper-faithful oracle kept verbatim from the
//! pre-compiled implementation; the compiled engine must agree with it on
//! single-pattern satisfiability, conjunctive satisfiability of a pattern
//! set, and the full collection of achievable match sets — and every
//! compiled witness tree must conform to the DTD and realise exactly the
//! match set it was returned for.

use proptest::prelude::*;
use std::collections::BTreeSet;
use xmlmap_dtd::Dtd;
use xmlmap_patterns::sat::reference;
use xmlmap_patterns::{matches, Pattern, SeqOp, Var};

const BUDGET: usize = xmlmap_patterns::DEFAULT_BUDGET;

/// Random small DTD from a fixed family over labels {r, a, b, c}.
fn arb_dtd() -> impl Strategy<Value = Dtd> {
    let bodies = prop_oneof![
        Just("a*"),
        Just("a, b?"),
        Just("a|b"),
        Just("a?, b?, c?"),
        Just("(a|b)*"),
        Just("a, a"),
        Just("b+"),
        Just("a, (b|c)*"),
    ];
    let inner = prop_oneof![Just(""), Just("c?"), Just("c*"), Just("c, c")];
    (bodies, inner.clone(), inner).prop_map(|(rb, ab, bb)| {
        Dtd::builder("r")
            .production("r", rb)
            .production("a", ab)
            .production("b", bb)
            .attrs("c", ["v"])
            .build()
            .unwrap()
    })
}

/// Random pattern over the same label set (single attribute on c).
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        Just(Pattern::leaf("a", Vec::<Var>::new())),
        Just(Pattern::leaf("b", Vec::<Var>::new())),
        Just(Pattern::leaf("c", ["x"])),
        Just(Pattern::leaf("c", ["y"])),
        Just(Pattern::wildcard(Vec::<Var>::new())),
        Just(Pattern::wildcard(["z"])),
    ];
    let sub = leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.child(q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.descendant(q)),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(p, q, s, nx)| {
                    p.seq(
                        vec![q, s],
                        vec![if nx { SeqOp::Next } else { SeqOp::Following }],
                    )
                }
            ),
        ]
    });
    sub.prop_map(|body| Pattern::leaf("r", Vec::<Var>::new()).child(body))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-pattern satisfiability: compiled and reference agree, and
    /// the compiled witness conforms and matches.
    #[test]
    fn satisfiable_agrees_with_reference(d in arb_dtd(), p in arb_pattern()) {
        let compiled = xmlmap_patterns::satisfiable(&d, &p, BUDGET).unwrap();
        let oracle = reference::satisfiable(&d, &p, BUDGET).unwrap();
        prop_assert_eq!(
            compiled.is_some(),
            oracle.is_some(),
            "engines disagree on {} under\n{}",
            p,
            d
        );
        if let Some(w) = compiled {
            prop_assert!(d.conforms(&w), "witness must conform:\n{w:?}\n{d}");
            prop_assert!(matches(&w, &p), "witness must match {p}:\n{w:?}");
        }
    }

    /// Conjunctive satisfiability over a two-pattern set: engines agree,
    /// and the compiled witness matches every pattern in the set.
    #[test]
    fn satisfiable_all_agrees_with_reference(
        d in arb_dtd(),
        p in arb_pattern(),
        q in arb_pattern(),
    ) {
        let pats = [&p, &q];
        let compiled = xmlmap_patterns::satisfiable_all(&d, &pats, BUDGET).unwrap();
        let oracle = reference::satisfiable_all(&d, &pats, BUDGET).unwrap();
        prop_assert_eq!(
            compiled.is_some(),
            oracle.is_some(),
            "engines disagree on {} ∧ {} under\n{}",
            p,
            q,
            d
        );
        if let Some(w) = compiled {
            prop_assert!(d.conforms(&w));
            prop_assert!(matches(&w, &p), "witness must match {p}:\n{w:?}");
            prop_assert!(matches(&w, &q), "witness must match {q}:\n{w:?}");
        }
    }

    /// Achievable match sets: both engines enumerate exactly the same
    /// collection of J ⊆ {0, 1}, and every compiled witness realises
    /// exactly its J (conforms, matches pattern i iff i ∈ J).
    #[test]
    fn match_sets_agree_with_reference(
        d in arb_dtd(),
        p in arb_pattern(),
        q in arb_pattern(),
    ) {
        let pats = [&p, &q];
        let compiled = xmlmap_patterns::achievable_match_sets(&d, &pats, BUDGET).unwrap();
        let oracle = reference::achievable_match_sets(&d, &pats, BUDGET).unwrap();
        let compiled_js: BTreeSet<BTreeSet<usize>> =
            compiled.iter().map(|(j, _)| j.clone()).collect();
        let oracle_js: BTreeSet<BTreeSet<usize>> =
            oracle.iter().map(|(j, _)| j.clone()).collect();
        prop_assert_eq!(
            &compiled_js,
            &oracle_js,
            "achievable match sets differ for ({}, {}) under\n{}",
            p,
            q,
            d
        );
        for (j, w) in &compiled {
            prop_assert!(d.conforms(w), "witness for J={j:?} must conform:\n{w:?}");
            prop_assert_eq!(matches(w, &p), j.contains(&0), "J={:?} w=\n{:?}", j, w);
            prop_assert_eq!(matches(w, &q), j.contains(&1), "J={:?} w=\n{:?}", j, w);
        }
    }
}
