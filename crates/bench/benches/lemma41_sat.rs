//! Lemma 4.1 — pattern satisfiability w.r.t. a DTD is NP-complete.
//!
//! * `sat_hard` — the descendant-obligation family: the type-fixpoint
//!   engine's state space doubles with each obligation (the NP wall);
//! * `sat_nr_ptime` — the same question restricted to nested-relational
//!   DTDs and downward patterns, where `satisfiable_nr` is polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlmap_gen::hard;

fn sat_hard_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma41/sat_hard");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let (dtd, pattern) = hard::sat_hard(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(dtd, pattern),
            |b, (dtd, pattern)| {
                b.iter(|| {
                    let w = xmlmap_patterns::satisfiable(
                        black_box(dtd),
                        black_box(pattern),
                        100_000_000,
                    )
                    .unwrap();
                    assert!(w.is_some());
                })
            },
        );
    }
    group.finish();
}

fn sat_nr_ptime(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma41/sat_nr_ptime");
    for n in [4usize, 8, 16, 32] {
        // Chain DTD of depth n; pattern probes the deepest element.
        let mut lines = vec!["root r".to_string()];
        let mut parent = "r".to_string();
        for i in 0..n {
            lines.push(format!("{parent} -> e{i}?"));
            parent = format!("e{i}");
        }
        let dtd = xmlmap_dtd::parse(&lines.join("\n")).unwrap();
        let pattern = xmlmap_patterns::parse(&format!("r//e{}", n - 1)).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(dtd, pattern),
            |b, (dtd, pattern)| {
                b.iter(|| {
                    let ans =
                        xmlmap_patterns::sat::satisfiable_nr(black_box(dtd), black_box(pattern))
                            .expect("fragment");
                    assert!(ans);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(lemma41, sat_hard_family, sat_nr_ptime);
criterion_main!(lemma41);
