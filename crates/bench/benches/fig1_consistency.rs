//! Figure 1 — consistency results.
//!
//! One bench group per cell of the paper's consistency grid:
//!
//! | id | cell | paper claim | expected shape |
//! |---|---|---|---|
//! | `cons_dn_nr` | CONS(⇓), nested-relational | PTIME (cubic) | polynomial in mapping size |
//! | `cons_dn_arbitrary` | CONS(⇓), arbitrary DTDs | EXPTIME-complete | exponential in #stds on the hard family |
//! | `cons_horiz` | CONS(⇓,⇒) | EXPTIME-complete | grows with chain length |
//! | `cons_nextsib_nr` | CONS(⇓,→), nested-relational | PSPACE-hard | super-polynomial on the chain family |
//! | `cons_data_bounded` | CONS(⇓,∼) | undecidable (Thm 5.4) | bounded semi-procedure, exponential in bound |
//! | `abscons_ptime` | ABSCONS(⇓), NR + fully specified | PTIME (Thm 6.3) | polynomial in chain depth |
//! | `abscons_structural` | ABSCONS°(⇓) | Π₂ᵖ (Prop 6.1) | exponential in #patterns |
//! | `conscomp` | CONSCOMP | EXPTIME (Thm 7.1) | grows with mapping size |

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlmap_core::{bounded, consistency};
use xmlmap_gen::hard;

const BUDGET: usize = 50_000_000;

fn cons_dn_nr(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/cons_dn_nr");
    for n in [2usize, 4, 8, 16, 32] {
        let m = hard::abscons_chain(n); // NR, downward, fully specified
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let ans = consistency::consistent_nr_ptime(black_box(m)).expect("fragment");
                assert!(ans);
            })
        });
    }
    group.finish();
}

fn cons_dn_arbitrary(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/cons_dn_arbitrary");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let m = hard::cons_exptime(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let ans = consistency::consistent(black_box(m), BUDGET).unwrap();
                assert!(!ans.is_consistent());
            })
        });
    }
    group.finish();
}

fn cons_horiz(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/cons_nextsib_nr");
    group.sample_size(10);
    for n in [1usize, 2, 3, 4] {
        let m = hard::cons_nextsib(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let ans = consistency::consistent(black_box(m), BUDGET).unwrap();
                assert!(ans.is_consistent());
            })
        });
    }
    group.finish();
}

fn cons_data_bounded(c: &mut Criterion) {
    // The undecidable cell: the bounded semi-procedure, cost vs. bound on
    // an inconsistent instance (the search exhausts the space).
    let m = xmlmap_core::Mapping::new(
        xmlmap_dtd::parse("root r\nr -> a+\na @ v").unwrap(),
        xmlmap_dtd::parse("root r\nr -> b\nb @ w").unwrap(),
        vec![
            xmlmap_core::Std::parse("r/a(x) --> r/b(x)").unwrap(),
            xmlmap_core::Std::parse("r[a(x), a(y)] ; x != y --> r/nosuch(x)").unwrap(),
            xmlmap_core::Std::parse("r[a(x), a(y)] ; x = y --> r/nosuch(x)").unwrap(),
        ],
    );
    let mut group = c.benchmark_group("fig1/cons_data_bounded");
    group.sample_size(10);
    for bound in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| {
                let out = bounded::consistent_bounded(black_box(&m), bound, bound + 1);
                assert!(matches!(out, bounded::BoundedOutcome::ExhaustedBounds));
            })
        });
    }
    group.finish();
}

fn abscons_ptime(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/abscons_ptime");
    for n in [2usize, 4, 8, 16, 32] {
        let m = hard::abscons_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let ans = xmlmap_core::abscons_nr_ptime(black_box(m)).expect("fragment");
                assert!(ans.holds());
            })
        });
    }
    group.finish();
}

fn abscons_structural(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/abscons_structural");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        // n value-free stds over an (a1|…|an)* source: 2^n match sets.
        let labels: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let ds = xmlmap_dtd::parse(&format!("root r\nr -> ({})*", labels.join("|"))).unwrap();
        let dt = xmlmap_dtd::parse("root r\nr -> c*").unwrap();
        let stds = (0..n)
            .map(|i| xmlmap_core::Std::parse(&format!("r/a{i} --> r/c")).unwrap())
            .collect();
        let m = xmlmap_core::Mapping::new(ds, dt, stds);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let ans = xmlmap_core::abscons_structural(black_box(m), BUDGET)
                    .unwrap()
                    .unwrap();
                assert!(ans.holds());
            })
        });
    }
    group.finish();
}

fn conscomp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/conscomp");
    group.sample_size(10);
    for n in [1usize, 2, 3] {
        let (m12, m23) = hard::compose_chain(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(m12, m23),
            |b, (m12, m23)| {
                b.iter(|| {
                    let ok =
                        consistency::composition_consistent(black_box(m12), black_box(m23), BUDGET)
                            .unwrap();
                    assert!(ok);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    fig1,
    cons_dn_nr,
    cons_dn_arbitrary,
    cons_horiz,
    cons_data_bounded,
    abscons_ptime,
    abscons_structural,
    conscomp
);
criterion_main!(fig1);
