//! Theorem 8.2 — syntactic composition of Skolem mappings.
//!
//! * `compose_chain` — cost of composing copy chains as the number of stds
//!   grows (the composed mapping enumerates matches of each Σ₂₃ source
//!   into the symbolic canonical target);
//! * `composed_membership` — evaluating the composed mapping vs. searching
//!   for a middle document semantically: the composed mapping answers
//!   membership without ever materialising the middle schema.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlmap_core::SkolemMapping;
use xmlmap_gen::hard;

fn compose_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm82/compose_chain");
    for n in [1usize, 2, 4, 8, 16] {
        let (m12, m23) = hard::compose_chain(n);
        let s12 = SkolemMapping::from_mapping(&m12).unwrap();
        let s23 = SkolemMapping::from_mapping(&m23).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(s12, s23),
            |b, (s12, s23)| {
                b.iter(|| {
                    let s13 = xmlmap_core::compose(black_box(s12), black_box(s23)).unwrap();
                    assert_eq!(s13.stds.len(), n + 1);
                })
            },
        );
    }
    group.finish();
}

fn composed_membership(c: &mut Criterion) {
    let (m12, m23) = hard::compose_chain(1);
    let s13 = xmlmap_core::compose(
        &SkolemMapping::from_mapping(&m12).unwrap(),
        &SkolemMapping::from_mapping(&m23).unwrap(),
    )
    .unwrap();
    let mut group = c.benchmark_group("thm82/composed_membership");
    for k in [2usize, 4, 8, 16] {
        let mut t1 = xmlmap_trees::Tree::new("r");
        let mut t3 = xmlmap_trees::Tree::new("w");
        for i in 0..k {
            t1.add_child(
                xmlmap_trees::Tree::ROOT,
                "a0",
                [("v", xmlmap_trees::Value::str(format!("v{i}")))],
            );
            t3.add_child(
                xmlmap_trees::Tree::ROOT,
                "c0",
                [("u", xmlmap_trees::Value::str(format!("v{i}")))],
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(k), &(t1, t3), |b, (t1, t3)| {
            b.iter(|| {
                assert!(s13.is_solution(black_box(t1), black_box(t3)));
            })
        });
    }
    group.finish();
}

criterion_group!(thm82, compose_chain, composed_membership);
criterion_main!(thm82);
