//! Ablations over the implementation's own design choices (DESIGN.md).
//!
//! * `eval_dp_vs_backtracking` — Boolean matching of failing multi-item
//!   patterns: the polynomial structural DP vs. the backtracking visitor
//!   (which re-enumerates item matches combinatorially);
//! * `chase_vs_bounded` — per-document solution existence: the chase vs.
//!   exhaustive bounded search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlmap_patterns::{Pattern, Valuation, Var};
use xmlmap_trees::{Tree, Value};

/// A failing pattern with `n` independent //-obligations over a flat tree:
/// exponential for the backtracking evaluator, linear for the DP.
fn adversarial(n: usize, width: usize) -> (Tree, Pattern) {
    let mut t = Tree::new("r");
    for i in 0..width {
        t.add_child(Tree::ROOT, "a", [("v", Value::int(i as i64))]);
    }
    let mut p = Pattern::leaf("r", Vec::<Var>::new());
    for i in 0..n {
        p = p.descendant(Pattern::leaf("a", [format!("u{i}")]));
    }
    p = p.descendant(Pattern::leaf("zz", Vec::<Var>::new())); // always fails
    (t, p)
}

fn eval_dp_vs_backtracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/eval_dp_vs_backtracking");
    group.sample_size(10);
    for n in [1usize, 2, 3, 4] {
        let (t, p) = adversarial(n, 24);
        group.bench_with_input(BenchmarkId::new("backtracking", n), &(t, p), |b, (t, p)| {
            b.iter(|| {
                // Force the backtracking path via a seeded (empty) search.
                assert!(!xmlmap_patterns::matches_with(
                    black_box(t),
                    black_box(p),
                    &Valuation::new()
                ));
            })
        });
    }
    for n in [1usize, 2, 3, 4, 8, 16] {
        let (t, p) = adversarial(n, 24);
        group.bench_with_input(BenchmarkId::new("dp", n), &(t, p), |b, (t, p)| {
            b.iter(|| {
                assert_eq!(
                    xmlmap_patterns::matches_structural(black_box(t), black_box(p)),
                    Some(false)
                );
            })
        });
    }
    group.finish();
}

fn chase_vs_bounded(c: &mut Criterion) {
    let m = xmlmap_core::Mapping::new(
        xmlmap_dtd::parse("root r\nr -> a*\na @ v").unwrap(),
        xmlmap_dtd::parse("root r\nr -> b*\nb @ w").unwrap(),
        vec![xmlmap_core::Std::parse("r/a(x) --> r/b(x)").unwrap()],
    );
    let mut group = c.benchmark_group("ablation/chase_vs_bounded");
    group.sample_size(10);
    for k in [1usize, 2, 3] {
        let mut src = Tree::new("r");
        for i in 0..k {
            src.add_child(Tree::ROOT, "a", [("v", Value::str(format!("v{i}")))]);
        }
        group.bench_with_input(BenchmarkId::new("chase", k), &src, |b, src| {
            b.iter(|| {
                let sol = xmlmap_core::canonical_solution(black_box(&m), black_box(src)).unwrap();
                assert_eq!(sol.size(), k + 1);
            })
        });
        let src2 = src.clone();
        group.bench_with_input(BenchmarkId::new("bounded", k), &src2, |b, src| {
            b.iter(|| {
                let sol =
                    xmlmap_core::bounded::solution_exists(black_box(&m), black_box(src), k + 1);
                assert!(sol.is_some());
            })
        });
    }
    group.finish();
}

criterion_group!(ablation, eval_dp_vs_backtracking, chase_vs_bounded);
criterion_main!(ablation);
