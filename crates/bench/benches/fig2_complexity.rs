//! Figure 2 — complexity results.
//!
//! | id | cell | paper claim | expected shape |
//! |---|---|---|---|
//! | `pattern_eval_data` | tree-pattern evaluation, data complexity | DLOGSPACE | ~linear in the document |
//! | `pattern_eval_combined` | …, combined complexity | PTIME | polynomial in doc × pattern |
//! | `membership_data` | ⟦M⟧ membership, data complexity | DLOGSPACE | ~linear in the documents |
//! | `membership_combined_fixed_vars` | …, fixed #vars | PTIME (Thm 4.3) | polynomial |
//! | `membership_combined_vars` | …, growing #vars | Π₂ᵖ-complete | exponential in #variables |
//! | `composition_data` | composition membership over SM(⇓,⇒) | EXPTIME-complete | grows with the documents |

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlmap_gen::hard;
use xmlmap_patterns::Valuation;

fn pattern_eval_data(c: &mut Criterion) {
    // Fixed pattern (the intro π with order), growing university document.
    let pattern = xmlmap_patterns::parse(
        "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]",
    )
    .unwrap();
    let mut group = c.benchmark_group("fig2/pattern_eval_data");
    // Build the per-case inputs concurrently; only the measurement loop
    // below must stay single-threaded.
    let sizes = [10usize, 40, 160, 640];
    let trees = xmlmap_par::par_map(&sizes, |&profs| xmlmap_gen::university_tree(profs, 3));
    for (profs, tree) in sizes.into_iter().zip(trees) {
        group.bench_with_input(
            BenchmarkId::from_parameter(tree.size()),
            &tree,
            |b, tree| {
                b.iter(|| {
                    let ms = xmlmap_patterns::all_matches(black_box(tree), black_box(&pattern));
                    assert_eq!(ms.len(), profs * 3);
                })
            },
        );
    }
    group.finish();
}

fn pattern_eval_combined(c: &mut Criterion) {
    // Pattern and document grow together (chains of students).
    let mut group = c.benchmark_group("fig2/pattern_eval_combined");
    for n in [2usize, 4, 8, 16] {
        let tree = xmlmap_gen::university_tree(n, n);
        // Pattern: n student conjuncts under one professor.
        let mut prof = xmlmap_patterns::Pattern::leaf("prof", ["x"]);
        let mut sup =
            xmlmap_patterns::Pattern::leaf("supervise", Vec::<xmlmap_patterns::Var>::new());
        for i in 0..n {
            sup = sup.child(xmlmap_patterns::Pattern::leaf("student", [format!("s{i}")]));
        }
        prof = prof.child(sup);
        let pattern =
            xmlmap_patterns::Pattern::leaf("r", Vec::<xmlmap_patterns::Var>::new()).child(prof);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(tree, pattern),
            |b, (tree, pattern)| {
                b.iter(|| {
                    // Boolean matching (the decision problem): PTIME.
                    assert!(xmlmap_patterns::matches_with(
                        black_box(tree),
                        black_box(pattern),
                        &Valuation::new()
                    ));
                })
            },
        );
    }
    group.finish();
}

fn membership_data(c: &mut Criterion) {
    // Fixed mapping (2 variables), growing documents.
    let m = hard::membership_vars(2);
    let mut group = c.benchmark_group("fig2/membership_data");
    let ks = [8usize, 32, 128, 512];
    let instances = xmlmap_par::par_map(&ks, |&k| hard::membership_instance(k));
    for (k, (t1, t3)) in ks.into_iter().zip(instances) {
        group.bench_with_input(BenchmarkId::from_parameter(k), &(t1, t3), |b, (t1, t3)| {
            b.iter(|| {
                assert!(m.is_solution(black_box(t1), black_box(t3)));
            })
        });
    }
    group.finish();
}

fn membership_combined_vars(c: &mut Criterion) {
    // Growing #variables: kⁿ firings over k = 4 values — the Π₂ᵖ wall.
    let mut group = c.benchmark_group("fig2/membership_combined_vars");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let m = hard::membership_vars_hard(n);
        let (t1, t3) = hard::membership_hard_instance(n, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(m, t1, t3),
            |b, (m, t1, t3)| {
                b.iter(|| {
                    assert!(m.is_solution(black_box(t1), black_box(t3)));
                })
            },
        );
    }
    group.finish();
}

fn composition_data(c: &mut Criterion) {
    // Fixed mappings, growing documents (data complexity of composition).
    let (m12, m23) = hard::compose_chain(0);
    // The shared context plays the per-session role the hand-hoisted
    // ShapeCache/ChaseCache pair used to: compile once, probe many times.
    let ctx = xmlmap_core::EngineContext::new();
    let mut group = c.benchmark_group("fig2/composition_data");
    group.sample_size(10);
    for k in [2usize, 4, 8, 16] {
        // k source values through the a0→b0→c0 chain.
        let mut t1 = xmlmap_trees::Tree::new("r");
        let mut t3 = xmlmap_trees::Tree::new("w");
        for i in 0..k {
            t1.add_child(
                xmlmap_trees::Tree::ROOT,
                "a0",
                [("v", xmlmap_trees::Value::str(format!("v{i}")))],
            );
            t3.add_child(
                xmlmap_trees::Tree::ROOT,
                "c0",
                [("u", xmlmap_trees::Value::str(format!("v{i}")))],
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(k), &(t1, t3), |b, (t1, t3)| {
            b.iter(|| {
                let middle = ctx.composition_member(
                    black_box(&m12),
                    black_box(&m23),
                    black_box(t1),
                    black_box(t3),
                    k + 2,
                );
                assert!(middle.is_some());
            })
        });
    }
    group.finish();
}

criterion_group!(
    fig2,
    pattern_eval_data,
    pattern_eval_combined,
    membership_data,
    membership_combined_vars,
    composition_data
);
criterion_main!(fig2);
