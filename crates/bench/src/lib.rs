//! # xmlmap-bench
//!
//! Benchmark harness regenerating the evaluation artefacts of
//! *XML Schema Mappings* (PODS 2009): the consistency-results grid
//! (Figure 1), the complexity-results grid (Figure 2), and the scaling
//! behaviours behind Lemma 4.1 and Theorem 8.2.
//!
//! * `cargo bench -p xmlmap-bench` runs the Criterion benches;
//! * `cargo run -p xmlmap-bench --bin tables --release` prints the
//!   paper-style empirical grids recorded in `EXPERIMENTS.md`.

pub mod micro;

use std::time::{Duration, Instant};

/// Times a closure once (the `tables` binary wants single-shot wall-clock
/// measurements of procedures whose cost spans six orders of magnitude).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration compactly for table cells.
pub fn fmt_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}µs")
    } else if micros < 1_000_000 {
        format!("{:.1}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250µs");
        assert_eq!(fmt_duration(Duration::from_micros(1_500)), "1.5ms");
        assert_eq!(fmt_duration(Duration::from_millis(2_300)), "2.30s");
    }

    #[test]
    fn time_once_returns_value() {
        let (v, d) = time_once(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}
