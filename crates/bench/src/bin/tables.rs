//! Prints the paper-style empirical grids (Figures 1 and 2) with measured
//! wall-clock times per cell. The output of this binary (in `--release`) is
//! what `EXPERIMENTS.md` records.

use xmlmap_bench::{fmt_duration, time_once};
use xmlmap_core::{bounded, consistency, SkolemMapping};
use xmlmap_gen::hard;

const BUDGET: usize = 200_000_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        let capture = args.iter().any(|a| a == "--capture-baseline");
        let gate = args
            .iter()
            .position(|a| a == "--gate")
            .and_then(|i| args.get(i + 1))
            .cloned();
        if !xmlmap_bench::micro::run_json(capture, gate.as_deref()) {
            std::process::exit(1);
        }
        return;
    }
    figure1();
    figure2();
    lemma41();
    thm82();
    chase_ablation();
}

fn header(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

fn figure1() {
    header("Figure 1 — consistency results (measured growth per cell)");

    println!("\nCONS(⇓) over nested-relational DTDs — paper: PTIME (cubic)");
    println!("{:>8} {:>12} {:>14}", "n", "stds", "time");
    for n in [4usize, 8, 16, 32, 64] {
        let m = hard::abscons_chain(n);
        let (ans, d) = time_once(|| consistency::consistent_nr_ptime(&m).unwrap());
        assert!(ans);
        println!("{n:>8} {:>12} {:>14}", m.stds.len(), fmt_duration(d));
    }

    println!("\nCONS(⇓) over arbitrary DTDs, hard family — paper: EXPTIME-complete");
    println!("{:>8} {:>12} {:>14}", "n", "match sets", "time");
    for n in [2usize, 4, 6, 8, 10] {
        let m = hard::cons_exptime(n);
        let (ans, d) = time_once(|| consistency::consistent(&m, BUDGET).unwrap());
        assert!(!ans.is_consistent());
        println!("{n:>8} {:>12} {:>14}", (1u64 << n) - 1, fmt_duration(d));
    }

    println!("\nCONS(⇓,→) over NR DTDs, chain family — paper: PSPACE-hard");
    println!("{:>8} {:>14}", "n", "time");
    for n in [1usize, 2, 3, 4, 5] {
        let m = hard::cons_nextsib(n);
        let (ans, d) = time_once(|| consistency::consistent(&m, BUDGET).unwrap());
        assert!(ans.is_consistent());
        println!("{n:>8} {:>14}", fmt_duration(d));
    }

    println!("\nCONS(⇓,∼) — paper: undecidable (Thm 5.4); bounded semi-procedure");
    println!("(inconsistent instance: the search exhausts all documents up to the bound)");
    println!("{:>8} {:>14}", "bound", "time");
    let m = xmlmap_core::Mapping::new(
        xmlmap_dtd::parse("root r\nr -> a+\na @ v").unwrap(),
        xmlmap_dtd::parse("root r\nr -> b\nb @ w").unwrap(),
        vec![
            xmlmap_core::Std::parse("r/a(x) --> r/b(x)").unwrap(),
            xmlmap_core::Std::parse("r[a(x), a(y)] ; x != y --> r/nosuch(x)").unwrap(),
            xmlmap_core::Std::parse("r[a(x), a(y)] ; x = y --> r/nosuch(x)").unwrap(),
        ],
    );
    for bound in [2usize, 3, 4, 5] {
        let (out, d) = time_once(|| bounded::consistent_bounded(&m, bound, bound + 1));
        assert!(matches!(out, bounded::BoundedOutcome::ExhaustedBounds));
        println!("{bound:>8} {:>14}", fmt_duration(d));
    }

    println!("\nABSCONS(⇓), NR + fully-specified — paper: PTIME (Thm 6.3)");
    println!("{:>8} {:>12} {:>14}", "n", "stds", "time");
    for n in [4usize, 8, 16, 32, 64] {
        let m = hard::abscons_chain(n);
        let (ans, d) = time_once(|| xmlmap_core::abscons_nr_ptime(&m).unwrap());
        assert!(ans.holds());
        println!("{n:>8} {:>12} {:>14}", m.stds.len(), fmt_duration(d));
    }

    println!("\nABSCONS°(⇓) (value-free) — paper: Π₂ᵖ-complete (Prop 6.1)");
    println!("{:>8} {:>12} {:>14}", "n", "match sets", "time");
    for n in [2usize, 4, 6, 8, 10] {
        let labels: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let ds = xmlmap_dtd::parse(&format!("root r\nr -> ({})*", labels.join("|"))).unwrap();
        let dt = xmlmap_dtd::parse("root r\nr -> c*").unwrap();
        let stds = (0..n)
            .map(|i| xmlmap_core::Std::parse(&format!("r/a{i} --> r/c")).unwrap())
            .collect();
        let m = xmlmap_core::Mapping::new(ds, dt, stds);
        let (ans, d) = time_once(|| {
            xmlmap_core::abscons_structural(&m, BUDGET)
                .unwrap()
                .unwrap()
        });
        assert!(ans.holds());
        println!("{n:>8} {:>12} {:>14}", 1u64 << n, fmt_duration(d));
    }

    println!("\nCONSCOMP over SM(⇓) — paper: EXPTIME-complete (Thm 7.1)");
    println!("{:>8} {:>14}", "n stds", "time");
    for n in [1usize, 2, 3, 4] {
        let (m12, m23) = hard::compose_chain(n);
        let (ok, d) =
            time_once(|| consistency::composition_consistent(&m12, &m23, BUDGET).unwrap());
        assert!(ok);
        println!("{:>8} {:>14}", n + 1, fmt_duration(d));
    }
}

fn figure2() {
    header("Figure 2 — complexity results (measured growth per cell)");

    println!("\nTree-pattern evaluation, data complexity — paper: DLOGSPACE");
    println!("{:>10} {:>10} {:>14}", "doc nodes", "matches", "time");
    let pattern = xmlmap_patterns::parse(
        "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]",
    )
    .unwrap();
    for profs in [10usize, 40, 160, 640, 2560] {
        let tree = xmlmap_gen::university_tree(profs, 3);
        let (ms, d) = time_once(|| xmlmap_patterns::all_matches(&tree, &pattern));
        println!(
            "{:>10} {:>10} {:>14}",
            tree.size(),
            ms.len(),
            fmt_duration(d)
        );
    }

    println!("\n⟦M⟧ membership, data complexity (fixed 2-var mapping) — paper: DLOGSPACE");
    println!("{:>10} {:>14}", "doc nodes", "time");
    let m2 = hard::membership_vars(2);
    for k in [16usize, 64, 256, 1024] {
        let (t1, t3) = hard::membership_instance(k);
        let (ok, d) = time_once(|| m2.is_solution(&t1, &t3));
        assert!(ok);
        println!("{:>10} {:>14}", t1.size() + t3.size(), fmt_duration(d));
    }

    println!("\n⟦M⟧ membership, combined complexity (growing #vars) — paper: Π₂ᵖ-complete");
    println!("(independent variables: kⁿ firings over k = 4 source values)");
    println!("{:>10} {:>14}", "#vars", "time");
    for n in [2usize, 4, 6, 8] {
        let m = hard::membership_vars_hard(n);
        let (t1, t3) = hard::membership_hard_instance(n, 4);
        let (ok, d) = time_once(|| m.is_solution(&t1, &t3));
        assert!(ok);
        println!("{n:>10} {:>14}", fmt_duration(d));
    }
    println!("… and with the number of variables FIXED at 2, the same check is");
    println!("polynomial in the documents (Thm 4.3(3)) — see the data-complexity row.");

    println!("\nComposition membership over SM(⇓,⇒), data complexity — paper: EXPTIME-complete");
    println!("(copy chain: the chase fast path applies, cost stays low …)");
    println!("{:>10} {:>14}", "values", "time");
    let (m12, m23) = hard::compose_chain(0);
    let shapes = xmlmap_core::ShapeCache::new(&m12.target_dtd);
    let chase = xmlmap_core::ChaseCache::new(&m12);
    for k in [2usize, 4, 8, 16, 32] {
        let mut t1 = xmlmap_trees::Tree::new("r");
        let mut t3 = xmlmap_trees::Tree::new("w");
        for i in 0..k {
            t1.add_child(
                xmlmap_trees::Tree::ROOT,
                "a0",
                [("v", xmlmap_trees::Value::str(format!("v{i}")))],
            );
            t3.add_child(
                xmlmap_trees::Tree::ROOT,
                "c0",
                [("u", xmlmap_trees::Value::str(format!("v{i}")))],
            );
        }
        let (middle, d) = time_once(|| {
            xmlmap_core::composition_member_cached(&m12, &m23, &t1, &t3, k + 2, &shapes, &chase)
        });
        assert!(middle.is_some());
        println!("{k:>10} {:>14}", fmt_duration(d));
    }

    println!("(… and with a horizontal middle constraint the fast path is unsound,");
    println!("so the exhaustive middle search shows the exponential wall)");
    println!("{:>10} {:>14}", "bound", "time");
    let m12h = xmlmap_core::Mapping::new(
        xmlmap_dtd::parse("root r\nr -> a*\na @ v").unwrap(),
        xmlmap_dtd::parse("root m\nm -> b*\nb @ w").unwrap(),
        vec![xmlmap_core::Std::parse("r/a(x) --> m/b(x)").unwrap()],
    );
    let m23h = xmlmap_core::Mapping::new(
        xmlmap_dtd::parse("root m\nm -> b*\nb @ w").unwrap(),
        xmlmap_dtd::parse("root w\nw -> c*\nc @ u").unwrap(),
        vec![xmlmap_core::Std::parse("m[b(x) -> b(y)] --> w[c(x), c(y)]").unwrap()],
    );
    // Two source values force ≥2 b's into every middle, so the horizontal
    // std always fires — and the empty final document can never satisfy it.
    let t1 = {
        let mut t = xmlmap_trees::Tree::new("r");
        t.add_child(
            xmlmap_trees::Tree::ROOT,
            "a",
            [("v", xmlmap_trees::Value::str("p"))],
        );
        t.add_child(
            xmlmap_trees::Tree::ROOT,
            "a",
            [("v", xmlmap_trees::Value::str("q"))],
        );
        t
    };
    let t3_neg = xmlmap_trees::Tree::new("w"); // no c at all: membership fails
    let shapes_h = xmlmap_core::ShapeCache::new(&m12h.target_dtd);
    let chase_h = xmlmap_core::ChaseCache::new(&m12h);
    for bound in [2usize, 3, 4, 5] {
        let (out, d) = time_once(|| {
            xmlmap_core::composition_member_cached(
                &m12h, &m23h, &t1, &t3_neg, bound, &shapes_h, &chase_h,
            )
        });
        assert!(out.is_none());
        println!("{bound:>10} {:>14}", fmt_duration(d));
    }
}

fn lemma41() {
    header("Lemma 4.1 — pattern satisfiability (NP-complete; PTIME on the NR fragment)");

    println!("\nhard family (descendant obligations, general engine)");
    println!("{:>8} {:>14}", "n", "time");
    for n in [2usize, 4, 6, 8, 10] {
        let (dtd, pattern) = hard::sat_hard(n);
        let (w, d) = time_once(|| xmlmap_patterns::satisfiable(&dtd, &pattern, BUDGET).unwrap());
        assert!(w.is_some());
        println!("{n:>8} {:>14}", fmt_duration(d));
    }

    println!("\nNR fragment (chain DTDs, satisfiable_nr)");
    println!("{:>8} {:>14}", "depth", "time");
    for n in [8usize, 16, 32, 64, 128] {
        let mut lines = vec!["root r".to_string()];
        let mut parent = "r".to_string();
        for i in 0..n {
            lines.push(format!("{parent} -> e{i}?"));
            parent = format!("e{i}");
        }
        let dtd = xmlmap_dtd::parse(&lines.join("\n")).unwrap();
        let pattern = xmlmap_patterns::parse(&format!("r//e{}", n - 1)).unwrap();
        let (ans, d) = time_once(|| xmlmap_patterns::sat::satisfiable_nr(&dtd, &pattern).unwrap());
        assert!(ans);
        println!("{n:>8} {:>14}", fmt_duration(d));
    }
}

fn thm82() {
    header("Theorem 8.2 — syntactic composition (closed class)");

    println!("\ncomposition cost and output size vs. #stds");
    println!("{:>8} {:>12} {:>14}", "n stds", "composed", "time");
    for n in [1usize, 2, 4, 8, 16, 32] {
        let (m12, m23) = hard::compose_chain(n);
        let s12 = SkolemMapping::from_mapping(&m12).unwrap();
        let s23 = SkolemMapping::from_mapping(&m23).unwrap();
        let (s13, d) = time_once(|| xmlmap_core::compose(&s12, &s23).unwrap());
        println!(
            "{:>8} {:>12} {:>14}",
            n + 1,
            s13.stds.len(),
            fmt_duration(d)
        );
    }
}

fn chase_ablation() {
    header("Ablation — the chase and solution reduction (§9 target construction)");

    println!("\ncanonical solution vs. reduced solution on the university mapping");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "profs", "src nodes", "canonical", "reduced", "chase time", "reduce time"
    );
    let m = xmlmap_core::Mapping::new(
        xmlmap_gen::university_dtd(),
        xmlmap_gen::university_target_dtd(),
        vec![
            xmlmap_core::Std::parse(
                "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]]]] \
                 --> r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)]]",
            )
            .unwrap(),
            xmlmap_core::Std::parse(
                "r[prof(x)[supervise[student(s)]]] --> r[student(s)[supervisor(x)]]",
            )
            .unwrap(),
        ],
    );
    for profs in [5usize, 20, 80, 320] {
        let src = xmlmap_gen::university_tree(profs, 3);
        let (solution, d_chase) = time_once(|| xmlmap_core::canonical_solution(&m, &src).unwrap());
        let (reduced, d_reduce) = time_once(|| xmlmap_core::reduce_solution(&m, &solution));
        println!(
            "{profs:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
            src.size(),
            solution.size(),
            reduced.size(),
            fmt_duration(d_chase),
            fmt_duration(d_reduce)
        );
    }
}
