//! The `--json` micro-benchmark suite behind `BENCH_eval.json`.
//!
//! Measures median ns/op for the hot paths of the evaluation kernel
//! (Figure 2 workloads): pattern enumeration, seeded backtracking probes,
//! the structural DP, mapping membership, the chase, and certain answers.
//!
//! Baseline workflow: `tables --json --capture-baseline` stores the current
//! medians in `BENCH_baseline.txt`; later plain `--json` runs re-measure and
//! write `BENCH_eval.json` with `baseline`, `current` and per-benchmark
//! `speedup` sections, so a perf change carries its own before/after
//! evidence in one artefact.

use criterion::measure_median_ns;
use std::time::Duration;
use xmlmap_automata::HedgeAutomaton;
use xmlmap_core::consistency;
use xmlmap_dtd::Dtd;
use xmlmap_gen::hard;
use xmlmap_patterns::{Pattern, Valuation, Var};
use xmlmap_trees::{Name, Tree, Value};

/// Samples per micro-benchmark (median of these is reported).
const SAMPLES: usize = 9;
/// Target measurement time per micro-benchmark.
const BUDGET: Duration = Duration::from_millis(250);
/// States budget for the type-fixpoint rows (never hit by these families).
const SAT_BUDGET: usize = 50_000_000;
/// States budget for the automata rows (never hit by these families).
const AUTO_BUDGET: usize = 50_000_000;

/// Satisfiability probes against the university DTD: the repeated-probe
/// workload of the consistency procedures (N sat calls against one schema).
const UNI_PROBES: [&str; 16] = [
    "r/prof(x)",
    "r//course(c)",
    "r//student(s)",
    "r/prof(x)[teach[year(y)]]",
    "r[prof(x)[supervise[student(s)]]]",
    "r[prof(x)[teach[year(y)[course(c1) -> course(c2)]]]]",
    "r//year(y)[course(c)]",
    "r[prof(a), prof(b)]",
    "r[prof(x)[teach[year(y)[course(c1) ->* course(c2)]]]]",
    "r//teach[year(y)]",
    "r[prof(x), prof(z)[supervise]]",
    "r//supervise[student(s1), student(s2)]",
    "r/prof(x)[teach[year(y)[course(c)]], supervise]",
    "r//year(y)[course(c1), course(c2)]",
    "r/prof(x)[supervise[student(s1) -> student(s2)]]",
    "r//prof(p)[teach[year(q)]]",
];

/// The value-free Π₂ᵖ family from the ABSCONS° grid row: `n` source labels
/// under `(a0|…|an-1)*`, each mapped to `r/c` (2ⁿ source match sets).
fn valuefree_mapping(n: usize) -> xmlmap_core::Mapping {
    let labels: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
    let ds = xmlmap_dtd::parse(&format!("root r\nr -> ({})*", labels.join("|"))).unwrap();
    let dt = xmlmap_dtd::parse("root r\nr -> c*").unwrap();
    let stds = (0..n)
        .map(|i| xmlmap_core::Std::parse(&format!("r/a{i} --> r/c")).unwrap())
        .collect();
    xmlmap_core::Mapping::new(ds, dt, stds)
}

/// A failing pattern with `n` independent `//`-obligations over a flat
/// tree — exponential for backtracking, linear for the structural DP
/// (same family as the ablation bench).
fn adversarial(n: usize, width: usize) -> (Tree, Pattern) {
    let mut t = Tree::new("r");
    for i in 0..width {
        t.add_child(Tree::ROOT, "a", [("v", Value::int(i as i64))]);
    }
    let mut p = Pattern::leaf("r", Vec::<Var>::new());
    for i in 0..n {
        p = p.descendant(Pattern::leaf("a", [format!("u{i}")]));
    }
    p = p.descendant(Pattern::leaf("zz", Vec::<Var>::new()));
    (t, p)
}

/// DTD whose root production is the classic "n-th symbol from the end"
/// language `(x|y)*, x, (x|y)ⁿ` — its horizontal DFA has ~2ⁿ subset
/// states, so inclusion pays the full subset construction.
fn nthlast_dtd(n: usize, flipped: bool) -> Dtd {
    let (alt, tail) = if flipped {
        ("y|x", ", (y|x)".repeat(n))
    } else {
        ("x|y", ", (x|y)".repeat(n))
    };
    xmlmap_dtd::parse(&format!("root r\nr -> ({alt})*, x{tail}")).unwrap()
}

/// A `k`-label DTD `r -> (a0|…|ak-1)*, last` for the product-emptiness
/// rows: two instances with different `last` have an empty intersection,
/// and a naive product pays O(k²) pair symbols per horizontal rule.
fn alt_tail_dtd(k: usize, last: usize) -> Dtd {
    let alts: Vec<String> = (0..k).map(|i| format!("a{i}")).collect();
    xmlmap_dtd::parse(&format!("root r\nr -> ({})*, a{last}", alts.join("|"))).unwrap()
}

/// A widened university DTD: every `xmlmap_gen::university_dtd` document
/// conforms to it (same attributes on reachable labels), so `subschema`
/// runs the full inclusion fixpoint and answers "yes".
fn university_evolved_dtd() -> Dtd {
    xmlmap_dtd::parse(
        "root r
         r -> prof*, visitor*
         prof -> teach, supervise, award?
         teach -> year+
         year -> course, course, course?
         supervise -> student*
         prof @ name
         student @ sid
         year @ y
         course @ cno",
    )
    .unwrap()
}

/// The university exchange mapping used by the chase/certain-answers rows.
fn university_mapping() -> xmlmap_core::Mapping {
    xmlmap_core::Mapping::new(
        xmlmap_gen::university_dtd(),
        xmlmap_gen::university_target_dtd(),
        vec![
            xmlmap_core::Std::parse(
                "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]]]] \
                 --> r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)]]",
            )
            .unwrap(),
            xmlmap_core::Std::parse(
                "r[prof(x)[supervise[student(s)]]] --> r[student(s)[supervisor(x)]]",
            )
            .unwrap(),
        ],
    )
}

/// A 200-job cache-heavy batch over a handful of compiled artifacts: the
/// workload the shared [`EngineContext`](xmlmap_core::EngineContext) is
/// designed for — six schemas and one automata pair compile once, and the
/// remaining ~195 jobs are answered from the caches.
fn engine_batch_jobs() -> Vec<xmlmap_core::BatchJob> {
    use std::sync::Arc;
    use xmlmap_core::{BatchJob, JobKind};
    let ce = Arc::new(hard::cons_exptime(5));
    let cn = Arc::new(hard::cons_nextsib(4));
    let vf = Arc::new(valuefree_mapping(6));
    let d1 = Arc::new(nthlast_dtd(6, false));
    let d2 = Arc::new(nthlast_dtd(6, true));
    let mut jobs = Vec::new();
    for i in 0..50 {
        jobs.push(BatchJob {
            label: format!("cons exptime5 {i}"),
            kind: JobKind::Consistent {
                mapping: ce.clone(),
                budget: SAT_BUDGET,
            },
        });
        jobs.push(BatchJob {
            label: format!("cons nextsib4 {i}"),
            kind: JobKind::Consistent {
                mapping: cn.clone(),
                budget: SAT_BUDGET,
            },
        });
        jobs.push(BatchJob {
            label: format!("abscons valuefree6 {i}"),
            kind: JobKind::AbsCons {
                mapping: vf.clone(),
                budget: SAT_BUDGET,
            },
        });
        jobs.push(BatchJob {
            label: format!("subschema nthlast6 {i}"),
            kind: JobKind::Subschema {
                d1: d1.clone(),
                d2: d2.clone(),
                budget: SAT_BUDGET,
            },
        });
    }
    jobs
}

/// Runs every micro-benchmark, returning `(name, median ns/op)` rows.
pub fn run_suite() -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    let mut bench = |name: &'static str, f: &mut dyn FnMut()| {
        let ns = measure_median_ns(SAMPLES, BUDGET, f);
        eprintln!("  {name:<40} {:>12.0} ns/op", ns);
        out.push((name, ns));
    };

    // Pattern enumeration over the intro document (Fig. 2 row 1).
    let pi1 = xmlmap_patterns::parse(
        "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]",
    )
    .unwrap();
    let uni160 = xmlmap_gen::university_tree(160, 3);
    bench("eval/all_matches_university160", &mut || {
        assert_eq!(xmlmap_patterns::all_matches(&uni160, &pi1).len(), 480);
    });

    // Seeded existential probe: the target-side check an std performs.
    let student = xmlmap_patterns::parse("r//student(s)").unwrap();
    let seed: Valuation = [(Var::new("s"), Value::str("s159_2"))]
        .into_iter()
        .collect();
    bench("eval/matches_with_seeded_probe", &mut || {
        assert!(xmlmap_patterns::matches_with(&uni160, &student, &seed));
    });

    // Failing multi-item pattern, backtracking forced via the seeded path.
    let (advt, advp) = adversarial(3, 24);
    bench("eval/matches_with_adversarial3", &mut || {
        assert!(!xmlmap_patterns::matches_with(
            &advt,
            &advp,
            &Valuation::new()
        ));
    });

    // The polynomial structural DP on a wide instance.
    let (dpt, dpp) = adversarial(16, 24);
    bench("eval/structural_dp16", &mut || {
        assert_eq!(xmlmap_patterns::matches_structural(&dpt, &dpp), Some(false));
    });

    // Membership, data complexity (fixed 2-var mapping; Fig. 2 row 2).
    let m2 = xmlmap_gen::hard::membership_vars(2);
    let (md1, md3) = xmlmap_gen::hard::membership_instance(256);
    bench("membership/data_k256", &mut || {
        assert!(m2.is_solution(&md1, &md3));
    });

    // Membership, combined complexity (k^n firings; Fig. 2 row 3).
    let mh = xmlmap_gen::hard::membership_vars_hard(4);
    let (mh1, mh3) = xmlmap_gen::hard::membership_hard_instance(4, 4);
    bench("membership/combined_n4_k4", &mut || {
        assert!(mh.is_solution(&mh1, &mh3));
    });

    // The chase: canonical solution of the university mapping, through a
    // per-mapping ChaseCache (the intended repeated-chase usage).
    let m = university_mapping();
    let chase_cache = xmlmap_core::ChaseCache::new(&m);
    let uni80 = xmlmap_gen::university_tree(80, 3);
    bench("chase/university_profs80", &mut || {
        let sol = xmlmap_core::canonical_solution_cached(&m, &uni80, &chase_cache).unwrap();
        assert!(sol.size() > 1);
    });
    let uni320 = xmlmap_gen::university_tree(320, 3);
    bench("chase/university_profs320", &mut || {
        let sol = xmlmap_core::canonical_solution_cached(&m, &uni320, &chase_cache).unwrap();
        assert!(sol.size() > 1);
    });

    // Certain answers: chase + enumeration + null filtering.
    let uni20 = xmlmap_gen::university_tree(20, 3);
    let query = xmlmap_patterns::parse("r/course(c, y)[taughtby(t)]").unwrap();
    bench("exchange/certain_answers_profs20", &mut || {
        let ans = xmlmap_core::certain_answers_cached(&m, &uni20, &query, &chase_cache).unwrap();
        assert_eq!(ans.len(), 40);
    });
    let uni80q = xmlmap_gen::university_tree(80, 3);
    bench("exchange/certain_answers_profs80", &mut || {
        let ans = xmlmap_core::certain_answers_cached(&m, &uni80q, &query, &chase_cache).unwrap();
        assert_eq!(ans.len(), 160);
    });

    // ---- consistency micro-suite (type-fixpoint engine workloads) ----

    // Repeated satisfiability probes against one schema: N probes pay the
    // schema compilation once under the SatCache.
    let uni_dtd = xmlmap_gen::university_dtd();
    let probes: Vec<Pattern> = UNI_PROBES
        .iter()
        .map(|s| xmlmap_patterns::parse(s).unwrap())
        .collect();
    let cache = xmlmap_patterns::SatCache::new(&uni_dtd).with_context("bench probes");
    bench("sat/probes_university_x16", &mut || {
        let n_sat = probes
            .iter()
            .filter(|p| cache.satisfiable(p, SAT_BUDGET).unwrap().is_some())
            .count();
        assert_eq!(n_sat, 16);
    });

    // Achievable match sets over 8 patterns (the CONS/ABSCONS primitive).
    let vf8 = valuefree_mapping(8);
    let srcs8: Vec<&Pattern> = vf8.stds.iter().map(|s| &s.source).collect();
    bench("sat/match_sets_n8", &mut || {
        let sets =
            xmlmap_patterns::achievable_match_sets(&vf8.source_dtd, &srcs8, SAT_BUDGET).unwrap();
        assert_eq!(sets.len(), 256);
    });

    // CONS on the EXPTIME family (2ⁿ−1 source match sets, inconsistent).
    let ce = hard::cons_exptime(6);
    bench("cons/exptime_n6", &mut || {
        let ans = consistency::consistent(&ce, SAT_BUDGET).unwrap();
        assert!(!ans.is_consistent());
    });

    // CONS with next-sibling chains (the PSPACE-hard family).
    let cn = hard::cons_nextsib(4);
    bench("cons/nextsib_n4", &mut || {
        let ans = consistency::consistent(&cn, SAT_BUDGET).unwrap();
        assert!(ans.is_consistent());
    });

    // ABSCONS° on the value-free Π₂ᵖ family.
    let vf6 = valuefree_mapping(6);
    bench("abscons/structural_n6", &mut || {
        let ans = xmlmap_core::abscons_structural(&vf6, SAT_BUDGET)
            .unwrap()
            .unwrap();
        assert!(ans.holds());
    });

    // Composition consistency: joint engine runs over the middle schema.
    let (m12, m23) = hard::compose_chain(3);
    bench("cons/compose_chain3", &mut || {
        assert!(consistency::composition_consistent(&m12, &m23, SAT_BUDGET).unwrap());
    });

    // ---- automata micro-suite (hedge-automata engine workloads) ----

    // Inclusion, miss path: a fresh check compiles both automata and runs
    // the (q_A, S_B) fixpoint from scratch every time.
    let inc_d1 = nthlast_dtd(8, false);
    let inc_d2 = nthlast_dtd(8, true);
    let inc_alphabet: Vec<Name> = inc_d1.alphabet().cloned().collect();
    bench("automata/inclusion_miss_nthlast8", &mut || {
        let a = HedgeAutomaton::from_dtd(&inc_d1);
        let b = HedgeAutomaton::from_dtd(&inc_d2);
        let verdict =
            xmlmap_automata::inclusion_counterexample(&a, &b, &inc_alphabet, AUTO_BUDGET).unwrap();
        assert!(verdict.is_none());
    });

    // Inclusion, hit path: repeated checks against one schema pair (the
    // AutomataCache workload — every check after the first reuses the
    // compiled tables and the memoized verdict).
    let inc_cache = xmlmap_automata::AutomataCache::new(&inc_d1, &inc_d2);
    bench("automata/inclusion_hit_nthlast8", &mut || {
        assert!(inc_cache.inclusion(AUTO_BUDGET).unwrap().is_none());
    });

    // Subschema at two sizes: the subset-blowup family and the schema-
    // evolution workload (university DTD vs a widened revision).
    let sub_d1 = nthlast_dtd(5, false);
    let sub_d2 = nthlast_dtd(5, true);
    bench("automata/subschema_nthlast5", &mut || {
        let v = xmlmap_automata::subschema(&sub_d1, &sub_d2, AUTO_BUDGET).unwrap();
        assert!(v.is_none());
    });
    let uni = xmlmap_gen::university_dtd();
    let uni_evolved = university_evolved_dtd();
    bench("automata/subschema_uni_evolved", &mut || {
        let v = xmlmap_automata::subschema(&uni, &uni_evolved, AUTO_BUDGET).unwrap();
        assert!(v.is_none());
    });

    // Product emptiness at two sizes: disjoint `(a0|…|ak)*, last`
    // languages; the verdict needs the inhabited-pair fixpoint only.
    let prod_a8 = HedgeAutomaton::from_dtd(&alt_tail_dtd(8, 0));
    let prod_b8 = HedgeAutomaton::from_dtd(&alt_tail_dtd(8, 1));
    bench("automata/product_empty_k8", &mut || {
        assert!(prod_a8.product(&prod_b8).is_empty());
    });
    let prod_a24 = HedgeAutomaton::from_dtd(&alt_tail_dtd(24, 0));
    let prod_b24 = HedgeAutomaton::from_dtd(&alt_tail_dtd(24, 1));
    bench("automata/product_empty_k24", &mut || {
        assert!(prod_a24.product(&prod_b24).is_empty());
    });

    // ---- engine micro-suite (shared EngineContext / batch driver) ----

    // The same 200-job mixed batch two ways, single worker both times so
    // the comparison isolates cache sharing from thread fan-out: `shared`
    // routes every job through one context (compile once, ~195 cache
    // hits); `fresh_ctx_per_job` rebuilds the caches for every job — the
    // per-call-cache workload the context replaces. The committed baseline
    // for the shared row is the fresh-per-job median, so the `speedup`
    // section of BENCH_eval.json records shared-vs-per-call directly.
    let batch_jobs = engine_batch_jobs();
    let no_failures = |results: &[xmlmap_core::JobResult]| {
        assert!(
            results
                .iter()
                .all(|r| !matches!(r, xmlmap_core::JobResult::Failed { .. })),
            "engine batch rows must complete every job"
        );
    };
    bench("engine/batch200_shared_ctx", &mut || {
        let ctx = xmlmap_core::EngineContext::new();
        no_failures(&xmlmap_core::run_batch(&ctx, &batch_jobs, 1));
    });
    bench("engine/batch200_fresh_ctx_per_job", &mut || {
        let results: Vec<xmlmap_core::JobResult> = batch_jobs
            .iter()
            .map(|job| xmlmap_core::run_job(&xmlmap_core::EngineContext::new(), job))
            .collect();
        no_failures(&results);
    });

    // Steady state: one probe against a fully warm context (every lookup a
    // cache hit — the marginal cost of a job inside a long session).
    let warm = xmlmap_core::EngineContext::new();
    let warm_cn = hard::cons_nextsib(4);
    assert!(warm
        .consistent(&warm_cn, SAT_BUDGET)
        .unwrap()
        .is_consistent());
    bench("engine/ctx_hit_consistent", &mut || {
        assert!(warm
            .consistent(&warm_cn, SAT_BUDGET)
            .unwrap()
            .is_consistent());
    });

    // Cold start with a warm artifact store: the restart workload the
    // persistent store targets. One throwaway run populates the store;
    // every measured iteration then builds a *fresh* context (cold memo
    // caches) over the same directory, so all compiles become disk loads.
    // Compare against `engine/batch200_shared_ctx`, whose fresh context
    // must actually compile.
    let disk_dir = std::env::temp_dir().join(format!("xmlmap-bench-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    {
        let ctx = xmlmap_core::EngineContext::new()
            .with_disk_cache(&disk_dir)
            .expect("bench disk-cache dir");
        no_failures(&xmlmap_core::run_batch(&ctx, &batch_jobs, 1));
        ctx.flush_disk_cache();
    }
    bench("engine/batch200_disk_warm", &mut || {
        let ctx = xmlmap_core::EngineContext::new()
            .with_disk_cache(&disk_dir)
            .expect("bench disk-cache dir");
        no_failures(&xmlmap_core::run_batch(&ctx, &batch_jobs, 1));
        assert_eq!(
            ctx.stats().total_compiled(),
            0,
            "warm store compiles nothing"
        );
    });
    let _ = std::fs::remove_dir_all(&disk_dir);

    // Cache churn under a memory budget far below the working set: every
    // artifact is repeatedly evicted and recompiled, yet accounted bytes
    // stay bounded. This is the worst case for the bounded context — the
    // row exists to keep the eviction machinery's overhead visible, not to
    // be fast.
    bench("engine/batch200_bounded_churn", &mut || {
        let ctx = xmlmap_core::EngineContext::new().with_memory_budget(10_000);
        no_failures(&xmlmap_core::run_batch(&ctx, &batch_jobs, 1));
        let stats = ctx.stats();
        assert!(stats.total_bytes() <= 10_000, "budget respected: {stats}");
        assert!(
            stats.sat.evictions + stats.automata.evictions > 0,
            "churn row must actually evict: {stats}"
        );
    });

    // Streaming rows: the O(depth) engines of `xmlmap stream`. Both are
    // self-asserting — the membership row checks the streaming verdict
    // against the tree-based evaluator on the 1x bench document, and the
    // RSS row checks that peak live streaming state over a 100x corpus
    // stays within 2x of the 1x run (flat in document size). Corpora are
    // streamed from temp files, never materialised.
    let uni_idx = std::sync::Arc::new(xmlmap_dtd::DtdIndex::new(&xmlmap_gen::university_dtd()));
    let stream_dir =
        std::env::temp_dir().join(format!("xmlmap-bench-stream-{}", std::process::id()));
    std::fs::create_dir_all(&stream_dir).expect("bench corpus dir");
    let corpus = |scale: usize| {
        let path = stream_dir.join(format!("university_{scale}x.xml"));
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).expect("bench corpus"));
        xmlmap_gen::write_university_xml(160 * scale, 3, &mut w).expect("bench corpus");
        std::io::Write::flush(&mut w).expect("bench corpus");
        path
    };
    let stream_file = |path: &std::path::Path, plan: Option<&xmlmap_patterns::StreamPattern>| {
        let src = std::io::BufReader::new(std::fs::File::open(path).expect("bench corpus"));
        let out = xmlmap_core::stream_document(&uni_idx, plan, src).expect("well-formed corpus");
        assert_eq!(out.violation, None, "bench corpora conform");
        out
    };
    let (corpus_1x, corpus_100x) = (corpus(1), corpus(100));

    // Membership verdict parity on the 1x document, measured streaming.
    let stream_probe = xmlmap_patterns::parse("r//year(y)[course(c1), course(c2)]").unwrap();
    let stream_plan = xmlmap_patterns::StreamPattern::compile(&stream_probe).unwrap();
    let mut tree_1x = xmlmap_gen::university_tree(160, 3);
    uni_idx.dtd().normalize_attrs(&mut tree_1x).unwrap();
    let tree_verdict = xmlmap_patterns::matches(&tree_1x, &stream_probe);
    bench("stream/membership_vs_tree_1x", &mut || {
        let out = stream_file(&corpus_1x, Some(&stream_plan));
        assert_eq!(out.matched, Some(tree_verdict), "stream vs tree verdict");
    });

    // Flat-RSS conformance: peak live state over 100x within 2x of 1x.
    let state_1x = stream_file(&corpus_1x, None).stats.peak_state_bytes;
    bench("stream/conformance_100x_flat_rss", &mut || {
        let out = stream_file(&corpus_100x, None);
        assert!(
            out.stats.peak_state_bytes <= 2 * state_1x,
            "streaming state grew with document size: {} bytes at 100x vs {} at 1x",
            out.stats.peak_state_bytes,
            state_1x
        );
    });
    // Streaming-chase rows (DESIGN.md §8.8). Both self-asserting: the
    // parity row checks that the streamed canonical solution equals the
    // tree chase's exactly (same canonical firing order ⇒ equal trees)
    // and that a streamed pass stays within 10x of a parse-then-chase
    // tree run on the same bytes; the flat-RSS row chases an exchange
    // corpus whose pad tail is 100x bigger and checks that firings and
    // peak live streaming state do not grow with the pad count.
    let ex_map = xmlmap_gen::exchange_mapping();
    let ex_idx = std::sync::Arc::new(xmlmap_dtd::DtdIndex::new(&ex_map.source_dtd));
    let ex_plan = xmlmap_core::StreamChasePlan::new(&ex_map);
    assert!(ex_plan.unstreamable().is_none(), "exchange stds stream");
    let ex_corpus = |scale: usize, pads: usize| {
        let path = stream_dir.join(format!("exchange_{scale}x.xml"));
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).expect("bench corpus"));
        xmlmap_gen::write_exchange_xml(160, 3, pads, &mut w).expect("bench corpus");
        std::io::Write::flush(&mut w).expect("bench corpus");
        path
    };
    let chase_file = |path: &std::path::Path| {
        let src = std::io::BufReader::new(std::fs::File::open(path).expect("bench corpus"));
        let out = xmlmap_core::chase_stream(&ex_idx, &ex_plan, src).expect("streamable plan");
        assert_eq!(out.violation, None, "bench corpora conform");
        out
    };
    let (ex_1x, ex_100x) = (ex_corpus(1, 4_000), ex_corpus(100, 400_000));

    let started = std::time::Instant::now();
    let expected = {
        let text = std::fs::read_to_string(&ex_1x).expect("bench corpus");
        let mut tree = xmlmap_trees::xml::parse(&text).expect("bench corpus");
        ex_map
            .source_dtd
            .normalize_attrs(&mut tree)
            .expect("conforms");
        xmlmap_core::canonical_solution(&ex_map, &tree).expect("in fragment")
    };
    let tree_chase = started.elapsed();
    let started = std::time::Instant::now();
    let out_1x = chase_file(&ex_1x);
    let stream_chase = started.elapsed();
    assert!(
        stream_chase <= tree_chase.max(Duration::from_millis(1)) * 10,
        "streamed chase ({stream_chase:?}) fell behind parse+chase ({tree_chase:?}) by over 10x"
    );
    bench("stream/chase_vs_tree_1x", &mut || {
        let out = chase_file(&ex_1x);
        let sol = out.solution.expect("conforming").expect("in fragment");
        assert!(sol == expected, "stream vs tree chase solutions differ");
    });

    // Flat-RSS chase: 100x the pads, same professors — identical firings,
    // peak live state within 2x of the 1x run.
    let live_1x = out_1x.peak_live_bytes();
    let firings_1x = out_1x.firings;
    bench("stream/chase_100x_flat_rss", &mut || {
        let out = chase_file(&ex_100x);
        assert_eq!(out.firings, firings_1x, "pads must fire nothing");
        assert!(
            out.peak_live_bytes() <= 2 * live_1x,
            "live chase state grew with corpus size: {} bytes at 100x vs {} at 1x",
            out.peak_live_bytes(),
            live_1x
        );
    });
    // Incremental-chase row (DESIGN.md §8.9): one single-op update against
    // a live delta session vs a from-scratch re-chase of the same 100x
    // exchange document. The edit rewrites an inert pad attribute, so the
    // session's refire frontier skips every std and only the (small)
    // target re-materializes; the one-shot self-assert pins the ≥5x
    // headline of the EXPERIMENTS.md updates/sec table.
    let mut ex_tree_100x = {
        let text = std::fs::read_to_string(&ex_100x).expect("bench corpus");
        xmlmap_trees::xml::parse(&text).expect("bench corpus")
    };
    ex_map
        .source_dtd
        .normalize_attrs(&mut ex_tree_100x)
        .expect("conforms");
    let started = std::time::Instant::now();
    let expected_100x =
        xmlmap_core::canonical_solution(&ex_map, &ex_tree_100x).expect("in fragment");
    let rechase = started.elapsed();
    let mut session = xmlmap_core::IncrementalChase::new(&ex_map, ex_tree_100x);
    // Flip the first pad's `a` attribute back and forth (its seeded value
    // is `a0`), so every iteration really edits the document.
    let flips = [
        xmlmap_core::parse_updates("settext 160 a a7").expect("static update"),
        xmlmap_core::parse_updates("settext 160 a a0").expect("static update"),
    ];
    let started = std::time::Instant::now();
    session.apply(&flips[0][0]).expect("valid update");
    assert!(
        session.canonical_solution().expect("in fragment") == expected_100x,
        "a pad edit must not change the solution"
    );
    let delta_update = started.elapsed();
    assert!(
        delta_update <= rechase.max(Duration::from_millis(5)) / 5,
        "single-op delta update ({delta_update:?}) is not ≥5x faster than re-chase ({rechase:?})"
    );
    let mut flip = 0usize;
    bench("chase/delta_vs_rechase", &mut || {
        flip ^= 1;
        session.apply(&flips[flip][0]).expect("valid update");
        let sol = session.canonical_solution().expect("in fragment");
        assert!(sol == expected_100x, "delta vs re-chase solutions differ");
    });
    let _ = std::fs::remove_dir_all(&stream_dir);

    out
}

/// Stores medians as `name<TAB>ns` lines (the committed baseline format).
pub fn write_baseline(path: &str, rows: &[(&'static str, f64)]) -> std::io::Result<()> {
    let mut s = String::new();
    for (name, ns) in rows {
        s.push_str(&format!("{name}\t{ns:.1}\n"));
    }
    std::fs::write(path, s)
}

/// Reads a baseline file written by [`write_baseline`]; `None` if absent.
pub fn read_baseline(path: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines() {
        let (name, ns) = line.split_once('\t')?;
        rows.push((name.to_string(), ns.trim().parse().ok()?));
    }
    Some(rows)
}

/// Renders the `BENCH_eval.json` document.
pub fn render_json(baseline: Option<&[(String, f64)]>, current: &[(&'static str, f64)]) -> String {
    fn obj(rows: &[(&str, f64)]) -> String {
        let fields: Vec<String> = rows
            .iter()
            .map(|(name, ns)| format!("    \"{name}\": {ns:.1}"))
            .collect();
        format!("{{\n{}\n  }}", fields.join(",\n"))
    }
    let mut s = String::from("{\n");
    s.push_str("  \"unit\": \"median ns per op\",\n");
    s.push_str("  \"command\": \"cargo run --release -p xmlmap-bench --bin tables -- --json\",\n");
    if let Some(base) = baseline {
        let base_rows: Vec<(&str, f64)> = base.iter().map(|(n, ns)| (n.as_str(), *ns)).collect();
        s.push_str(&format!("  \"baseline\": {},\n", obj(&base_rows)));
        let speedups: Vec<(&str, f64)> = current
            .iter()
            .filter_map(|(name, ns)| {
                let b = base.iter().find(|(bn, _)| bn == name)?.1;
                Some((*name, b / ns))
            })
            .collect();
        s.push_str(&format!(
            "  \"current\": {},\n  \"speedup\": {}\n",
            obj(current),
            obj(&speedups)
        ));
    } else {
        s.push_str(&format!("  \"current\": {}\n", obj(current)));
    }
    s.push_str("}\n");
    s
}

/// Parses the `"current"` section of a committed `BENCH_eval.json`-style
/// document (the gate's reference medians). `None` if the file is absent or
/// has no parseable `"current"` object.
pub fn read_committed_current(path: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let start = text.find("\"current\"")?;
    let open = start + text[start..].find('{')?;
    let close = open + text[open..].find('}')?;
    let mut rows = Vec::new();
    for line in text[open + 1..close].lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let (name, ns) = line.rsplit_once(':')?;
        rows.push((
            name.trim().trim_matches('"').to_string(),
            ns.trim().parse().ok()?,
        ));
    }
    if rows.is_empty() {
        None
    } else {
        Some(rows)
    }
}

/// Regression-gate comparison: rows whose fresh median exceeds
/// `threshold ×` the committed median. Benchmarks present on only one side
/// are skipped (new rows can't regress; removed rows can't be measured).
pub fn regressions(
    committed: &[(String, f64)],
    current: &[(&'static str, f64)],
    threshold: f64,
) -> Vec<(String, f64, f64)> {
    current
        .iter()
        .filter_map(|(name, ns)| {
            let committed_ns = committed.iter().find(|(cn, _)| cn == name)?.1;
            (committed_ns > 0.0 && *ns > threshold * committed_ns)
                .then(|| (name.to_string(), committed_ns, *ns))
        })
        .collect()
}

/// The factor by which a benchmark median may exceed the committed
/// reference before the `--gate` run fails.
pub const GATE_THRESHOLD: f64 = 2.0;

/// The `--json` entry point: measure, optionally (re)capture the baseline,
/// and write `BENCH_eval.json` next to the current directory.
///
/// With `gate = Some(path)`, the committed reference medians are read from
/// `path` *before* measuring (the run overwrites `BENCH_eval.json`), and the
/// return value is `false` if any shared benchmark regressed by more than
/// [`GATE_THRESHOLD`]×.
pub fn run_json(capture_baseline: bool, gate: Option<&str>) -> bool {
    // Read the committed reference first: measuring rewrites BENCH_eval.json,
    // and the gate file is usually that same committed artefact.
    let committed = gate.map(|path| {
        read_committed_current(path)
            .unwrap_or_else(|| panic!("--gate {path}: no parseable \"current\" section"))
    });
    eprintln!("running eval micro-benchmarks ({SAMPLES} samples each)…");
    let current = run_suite();
    if capture_baseline {
        write_baseline("BENCH_baseline.txt", &current).expect("write BENCH_baseline.txt");
        eprintln!("captured baseline -> BENCH_baseline.txt");
    }
    let baseline = read_baseline("BENCH_baseline.txt");
    let json = render_json(baseline.as_deref(), &current);
    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("{json}");
    eprintln!("wrote BENCH_eval.json");
    if let Some(committed) = committed {
        let bad = regressions(&committed, &current, GATE_THRESHOLD);
        if bad.is_empty() {
            eprintln!(
                "bench gate: OK ({} shared benchmarks within {GATE_THRESHOLD}x)",
                current
                    .iter()
                    .filter(|(n, _)| committed.iter().any(|(cn, _)| cn == n))
                    .count()
            );
        } else {
            eprintln!("bench gate: FAILED — regressions over {GATE_THRESHOLD}x:");
            for (name, was, now) in &bad {
                eprintln!(
                    "  {name:<40} {was:>12.0} -> {now:>12.0} ns/op ({:.2}x)",
                    now / was
                );
            }
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_with_baseline() {
        let base = vec![("a/b".to_string(), 300.0)];
        let cur = vec![("a/b", 100.0)];
        let json = render_json(Some(&base), &cur);
        assert!(json.contains("\"baseline\""));
        assert!(json.contains("\"a/b\": 3.0"), "{json}");
    }

    #[test]
    fn committed_current_roundtrip_and_gate() {
        let base = vec![("a/b".to_string(), 300.0), ("c/d".to_string(), 50.0)];
        let cur = vec![("a/b", 100.0), ("c/d", 120.0), ("new/row", 7.0)];
        let json = render_json(Some(&base), &cur);
        let dir = std::env::temp_dir().join("xmlmap_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("committed.json");
        std::fs::write(&path, &json).unwrap();
        let committed = read_committed_current(path.to_str().unwrap()).unwrap();
        assert_eq!(
            committed,
            vec![
                ("a/b".to_string(), 100.0),
                ("c/d".to_string(), 120.0),
                ("new/row".to_string(), 7.0)
            ]
        );
        // Fresh run: a/b fine, c/d regressed 3x, extra/row ignored.
        let fresh = vec![("a/b", 150.0), ("c/d", 360.0), ("extra/row", 1.0)];
        let bad = regressions(&committed, &fresh, GATE_THRESHOLD);
        assert_eq!(bad, vec![("c/d".to_string(), 120.0, 360.0)]);
    }

    #[test]
    fn baseline_roundtrip() {
        let dir = std::env::temp_dir().join("xmlmap_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.txt");
        let path = path.to_str().unwrap();
        write_baseline(path, &[("x/y", 12.5)]).unwrap();
        let back = read_baseline(path).unwrap();
        assert_eq!(back, vec![("x/y".to_string(), 12.5)]);
    }
}
