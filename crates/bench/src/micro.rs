//! The `--json` micro-benchmark suite behind `BENCH_eval.json`.
//!
//! Measures median ns/op for the hot paths of the evaluation kernel
//! (Figure 2 workloads): pattern enumeration, seeded backtracking probes,
//! the structural DP, mapping membership, the chase, and certain answers.
//!
//! Baseline workflow: `tables --json --capture-baseline` stores the current
//! medians in `BENCH_baseline.txt`; later plain `--json` runs re-measure and
//! write `BENCH_eval.json` with `baseline`, `current` and per-benchmark
//! `speedup` sections, so a perf change carries its own before/after
//! evidence in one artefact.

use criterion::measure_median_ns;
use std::time::Duration;
use xmlmap_patterns::{Pattern, Valuation, Var};
use xmlmap_trees::{Tree, Value};

/// Samples per micro-benchmark (median of these is reported).
const SAMPLES: usize = 9;
/// Target measurement time per micro-benchmark.
const BUDGET: Duration = Duration::from_millis(250);

/// A failing pattern with `n` independent `//`-obligations over a flat
/// tree — exponential for backtracking, linear for the structural DP
/// (same family as the ablation bench).
fn adversarial(n: usize, width: usize) -> (Tree, Pattern) {
    let mut t = Tree::new("r");
    for i in 0..width {
        t.add_child(Tree::ROOT, "a", [("v", Value::int(i as i64))]);
    }
    let mut p = Pattern::leaf("r", Vec::<Var>::new());
    for i in 0..n {
        p = p.descendant(Pattern::leaf("a", [format!("u{i}")]));
    }
    p = p.descendant(Pattern::leaf("zz", Vec::<Var>::new()));
    (t, p)
}

/// The university exchange mapping used by the chase/certain-answers rows.
fn university_mapping() -> xmlmap_core::Mapping {
    xmlmap_core::Mapping::new(
        xmlmap_gen::university_dtd(),
        xmlmap_gen::university_target_dtd(),
        vec![
            xmlmap_core::Std::parse(
                "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]]]] \
                 --> r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)]]",
            )
            .unwrap(),
            xmlmap_core::Std::parse(
                "r[prof(x)[supervise[student(s)]]] --> r[student(s)[supervisor(x)]]",
            )
            .unwrap(),
        ],
    )
}

/// Runs every micro-benchmark, returning `(name, median ns/op)` rows.
pub fn run_suite() -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    let mut bench = |name: &'static str, f: &mut dyn FnMut()| {
        let ns = measure_median_ns(SAMPLES, BUDGET, f);
        eprintln!("  {name:<40} {:>12.0} ns/op", ns);
        out.push((name, ns));
    };

    // Pattern enumeration over the intro document (Fig. 2 row 1).
    let pi1 = xmlmap_patterns::parse(
        "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]]",
    )
    .unwrap();
    let uni160 = xmlmap_gen::university_tree(160, 3);
    bench("eval/all_matches_university160", &mut || {
        assert_eq!(xmlmap_patterns::all_matches(&uni160, &pi1).len(), 480);
    });

    // Seeded existential probe: the target-side check an std performs.
    let student = xmlmap_patterns::parse("r//student(s)").unwrap();
    let seed: Valuation = [(Var::new("s"), Value::str("s159_2"))].into_iter().collect();
    bench("eval/matches_with_seeded_probe", &mut || {
        assert!(xmlmap_patterns::matches_with(&uni160, &student, &seed));
    });

    // Failing multi-item pattern, backtracking forced via the seeded path.
    let (advt, advp) = adversarial(3, 24);
    bench("eval/matches_with_adversarial3", &mut || {
        assert!(!xmlmap_patterns::matches_with(&advt, &advp, &Valuation::new()));
    });

    // The polynomial structural DP on a wide instance.
    let (dpt, dpp) = adversarial(16, 24);
    bench("eval/structural_dp16", &mut || {
        assert_eq!(xmlmap_patterns::matches_structural(&dpt, &dpp), Some(false));
    });

    // Membership, data complexity (fixed 2-var mapping; Fig. 2 row 2).
    let m2 = xmlmap_gen::hard::membership_vars(2);
    let (md1, md3) = xmlmap_gen::hard::membership_instance(256);
    bench("membership/data_k256", &mut || {
        assert!(m2.is_solution(&md1, &md3));
    });

    // Membership, combined complexity (k^n firings; Fig. 2 row 3).
    let mh = xmlmap_gen::hard::membership_vars_hard(4);
    let (mh1, mh3) = xmlmap_gen::hard::membership_hard_instance(4, 4);
    bench("membership/combined_n4_k4", &mut || {
        assert!(mh.is_solution(&mh1, &mh3));
    });

    // The chase: canonical solution of the university mapping.
    let m = university_mapping();
    let uni80 = xmlmap_gen::university_tree(80, 3);
    bench("chase/university_profs80", &mut || {
        let sol = xmlmap_core::canonical_solution(&m, &uni80).unwrap();
        assert!(sol.size() > 1);
    });

    // Certain answers: chase + enumeration + null filtering.
    let uni20 = xmlmap_gen::university_tree(20, 3);
    let query = xmlmap_patterns::parse("r/course(c, y)[taughtby(t)]").unwrap();
    bench("exchange/certain_answers_profs20", &mut || {
        let ans = xmlmap_core::certain_answers(&m, &uni20, &query).unwrap();
        assert_eq!(ans.len(), 40);
    });

    out
}

/// Stores medians as `name<TAB>ns` lines (the committed baseline format).
pub fn write_baseline(path: &str, rows: &[(&'static str, f64)]) -> std::io::Result<()> {
    let mut s = String::new();
    for (name, ns) in rows {
        s.push_str(&format!("{name}\t{ns:.1}\n"));
    }
    std::fs::write(path, s)
}

/// Reads a baseline file written by [`write_baseline`]; `None` if absent.
pub fn read_baseline(path: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines() {
        let (name, ns) = line.split_once('\t')?;
        rows.push((name.to_string(), ns.trim().parse().ok()?));
    }
    Some(rows)
}

/// Renders the `BENCH_eval.json` document.
pub fn render_json(
    baseline: Option<&[(String, f64)]>,
    current: &[(&'static str, f64)],
) -> String {
    fn obj(rows: &[(&str, f64)]) -> String {
        let fields: Vec<String> = rows
            .iter()
            .map(|(name, ns)| format!("    \"{name}\": {ns:.1}"))
            .collect();
        format!("{{\n{}\n  }}", fields.join(",\n"))
    }
    let mut s = String::from("{\n");
    s.push_str("  \"unit\": \"median ns per op\",\n");
    s.push_str(
        "  \"command\": \"cargo run --release -p xmlmap-bench --bin tables -- --json\",\n",
    );
    if let Some(base) = baseline {
        let base_rows: Vec<(&str, f64)> =
            base.iter().map(|(n, ns)| (n.as_str(), *ns)).collect();
        s.push_str(&format!("  \"baseline\": {},\n", obj(&base_rows)));
        let speedups: Vec<(&str, f64)> = current
            .iter()
            .filter_map(|(name, ns)| {
                let b = base.iter().find(|(bn, _)| bn == name)?.1;
                Some((*name, b / ns))
            })
            .collect();
        s.push_str(&format!(
            "  \"current\": {},\n  \"speedup\": {}\n",
            obj(current),
            obj(&speedups)
        ));
    } else {
        s.push_str(&format!("  \"current\": {}\n", obj(current)));
    }
    s.push_str("}\n");
    s
}

/// The `--json` entry point: measure, optionally (re)capture the baseline,
/// and write `BENCH_eval.json` next to the current directory.
pub fn run_json(capture_baseline: bool) {
    eprintln!("running eval micro-benchmarks ({SAMPLES} samples each)…");
    let current = run_suite();
    if capture_baseline {
        write_baseline("BENCH_baseline.txt", &current).expect("write BENCH_baseline.txt");
        eprintln!("captured baseline -> BENCH_baseline.txt");
    }
    let baseline = read_baseline("BENCH_baseline.txt");
    let json = render_json(baseline.as_deref(), &current);
    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("{json}");
    eprintln!("wrote BENCH_eval.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_with_baseline() {
        let base = vec![("a/b".to_string(), 300.0)];
        let cur = vec![("a/b", 100.0)];
        let json = render_json(Some(&base), &cur);
        assert!(json.contains("\"baseline\""));
        assert!(json.contains("\"a/b\": 3.0"), "{json}");
    }

    #[test]
    fn baseline_roundtrip() {
        let dir = std::env::temp_dir().join("xmlmap_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.txt");
        let path = path.to_str().unwrap();
        write_baseline(path, &[("x/y", 12.5)]).unwrap();
        let back = read_baseline(path).unwrap();
        assert_eq!(back, vec![("x/y".to_string(), 12.5)]);
    }
}
