//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The build environment cannot fetch rayon, so the fan-out points in the
//! workspace (per-STD chase firings, per-candidate certain answers, per-case
//! benchmarks) use these instead. The API is deliberately tiny: an indexed
//! parallel map that preserves input order, and a `for_each` built on it.
//!
//! Work is distributed by an atomic cursor, so uneven item costs balance
//! across workers. Closures must be `Sync` (shared by reference) and results
//! `Send`. For tiny inputs (or on single-CPU hosts) everything runs inline on
//! the calling thread, keeping overhead at one atomic load.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: the available parallelism, capped so
/// micro-workloads don't pay for dozens of idle threads.
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Applies `f` to every item, in parallel, returning outputs in input order.
///
/// Equivalent to `items.iter().map(f).collect()` but fanned out over scoped
/// threads. Panics in `f` propagate to the caller.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_workers(items, worker_count(), f)
}

/// [`par_map`] with an explicit worker count.
///
/// Unlike [`par_map`], this spawns exactly `workers` threads (capped at the
/// item count) even on a single-CPU host — callers like the batch driver
/// use the thread count as an interleaving/correctness knob, not only a
/// throughput knob, so it must not silently collapse to the available
/// parallelism. `workers <= 1` runs inline on the calling thread. Output
/// order is the input order regardless of the worker count.
pub fn par_map_workers<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    // Workers buffer (index, output) pairs locally and merge once at the
    // end, so the hot loop touches only the shared cursor — no per-item
    // lock traffic.
    let buffers: Vec<Mutex<Vec<(usize, U)>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for buffer in &buffers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                *buffer.lock().unwrap() = local;
            });
        }
    });
    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for buffer in buffers {
        for (i, out) in buffer.into_inner().unwrap() {
            results[i] = Some(out);
        }
    }
    results
        .into_iter()
        .map(|slot| slot.expect("workers covered every index"))
        .collect()
}

/// Applies `f` to every item in parallel, discarding outputs.
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    par_map(items, |item| f(item));
}

/// [`par_map`] behind a caller-supplied size gate: runs in parallel when
/// `parallel` is true, inline otherwise (same output either way).
///
/// Fixpoint engines that expand a dirty frontier per round (the compiled
/// automata product/inclusion loops) use this so tiny rounds — a handful of
/// machines woken by one new pair — skip thread fan-out entirely instead of
/// re-deriving the gate condition at every call site.
pub fn par_map_gated<T, U, F>(items: &[T], parallel: bool, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if parallel {
        par_map(items, f)
    } else {
        items.iter().map(f).collect()
    }
}

/// Parallel map over indices `0..n` — handy when the items themselves are
/// produced by indexing into several slices.
pub fn par_map_indices<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let items: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for workers in [0, 1, 2, 8, 1000] {
            assert_eq!(par_map_workers(&items, workers, |&x| x * 3), expected);
        }
    }

    #[test]
    fn uneven_work_balances() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, |&i| {
            // Make cost vary by item so the cursor distribution matters.
            (0..(i * 1000)).fold(0u64, |a, b| a.wrapping_add(b as u64))
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn for_each_visits_all() {
        let hits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..257).collect();
        par_for_each(&items, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn indices_map() {
        assert_eq!(par_map_indices(5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn gated_map_matches_either_way() {
        let items: Vec<u32> = (0..100).collect();
        let expected: Vec<u32> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(par_map_gated(&items, true, |&x| x + 1), expected);
        assert_eq!(par_map_gated(&items, false, |&x| x + 1), expected);
    }
}
